#include "simnet/parallel_sim.h"

#include <algorithm>
#include <utility>

#include "simnet/check.h"

namespace pardsm {

namespace {

/// Stream tags separating the two per-message channel streams (the
/// parallel analogue of Network's latency_rng_ / fault_rng_ split).
constexpr std::uint64_t kTagLatency = 0x4C41544EULL;  // "LATN"
constexpr std::uint64_t kTagFault = 0x4641554CULL;    // "FAUL"
constexpr std::uint64_t kTagChannel = 0x4348414EULL;  // "CHAN"

/// Which shard (if any) the calling thread is currently draining, per
/// simulator: workers of one simulator never call into another.
struct ShardContext {
  const void* sim = nullptr;
  void* shard = nullptr;
};
thread_local ShardContext tl_shard_ctx;

}  // namespace

ParallelSimulator::ParallelSimulator(ParallelSimOptions options)
    : options_(std::move(options)) {
  PARDSM_CHECK(options_.num_threads >= 1,
               "ParallelSimulator needs at least one worker");
  channel_seed_ = mix_word(options_.seed, kTagChannel);
  arenas_.reserve(options_.num_threads);
  for (unsigned w = 0; w < options_.num_threads; ++w) {
    arenas_.push_back(std::make_unique<BodyArena>(/*concurrent=*/true));
  }
}

ParallelSimulator::~ParallelSimulator() {
  // run() joins its workers on every path; this is a safety net for a
  // simulator destroyed mid-run by an exception unwinding past run().
  if (!workers_.empty()) {
    {
      std::lock_guard lk(mu_);
      stop_workers_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
}

ProcessId ParallelSimulator::add_endpoint(Endpoint* ep) {
  PARDSM_CHECK(ep != nullptr, "add_endpoint: null endpoint");
  PARDSM_CHECK(!frozen_, "add_endpoint: registration is frozen");
  endpoints_.push_back(ep);
  return static_cast<ProcessId>(endpoints_.size() - 1);
}

void ParallelSimulator::set_var_hint(std::size_t m) {
  if (m > var_hint_) var_hint_ = m;
  stats_.set_var_hint(var_hint_);
}

void ParallelSimulator::freeze() {
  if (frozen_) return;
  const std::size_t n = endpoints_.size();
  PARDSM_CHECK(n > 0, "freeze: no endpoints registered");

  if (!options_.latency) {
    options_.latency = std::make_unique<ConstantLatency>(millis(1));
  }
  const Duration floor = options_.latency->lower_bound();
  PARDSM_CHECK(floor.us >= 1, "freeze: latency lower bound below 1us");
  quantum_ = options_.quantum.us > 0 ? options_.quantum : floor;
  PARDSM_CHECK(quantum_ <= floor,
               "freeze: quantum exceeds the latency lower bound — a message "
               "could arrive inside the window it was sent in");

  const auto num_shards = static_cast<int>(options_.num_threads);
  if (options_.shard_of.empty()) {
    shard_of_.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
      shard_of_[p] = static_cast<int>(p) % num_shards;
    }
  } else {
    PARDSM_CHECK(options_.shard_of.size() == n,
                 "freeze: shard_of must cover every process");
    for (int s : options_.shard_of) {
      PARDSM_CHECK(s >= 0 && s < num_shards, "freeze: shard out of range");
    }
    shard_of_ = options_.shard_of;
  }

  shards_.reserve(options_.num_threads);
  for (unsigned w = 0; w < options_.num_threads; ++w) {
    auto shard = std::make_unique<Shard>();
    shard->latency = options_.latency->clone();
    shard->stats.set_var_hint(var_hint_);
    shard->stats.resize(n);
    shards_.push_back(std::move(shard));
  }

  // The fault network carries severed/down/rate-override state only; its
  // internal RNG streams and clamp state are never consulted.
  fault_net_ = std::make_unique<Network>(
      n, options_.channel, options_.latency->clone(),
      Rng(mix_word(options_.seed, 0x4E455457ULL)));  // "NETW"

  send_seq_.assign(n, 0);
  timer_seq_.assign(n, 0);
  closure_seq_.assign(n, 0);
  stats_.set_var_hint(var_hint_);
  stats_.resize(n);
  frozen_ = true;
}

Network& ParallelSimulator::fault_network() {
  freeze();
  return *fault_net_;
}

ParallelSimulator::Shard* ParallelSimulator::current_shard() const {
  if (tl_shard_ctx.sim != this) return nullptr;
  return static_cast<Shard*>(tl_shard_ctx.shard);
}

TimePoint ParallelSimulator::now() const {
  if (const Shard* shard = current_shard()) return shard->now;
  return coordinator_now_;
}

void ParallelSimulator::push_event(Shard& shard, PEvent e) {
  shard.heap.push_back(std::move(e));
  std::push_heap(shard.heap.begin(), shard.heap.end());
}

void ParallelSimulator::send(ProcessId from, ProcessId to, BodyRef body,
                             MessageMeta meta) {
  PARDSM_CHECK(frozen_, "send before freeze()");
  const std::size_t n = endpoints_.size();
  PARDSM_CHECK(from >= 0 && static_cast<std::size_t>(from) < n && to >= 0 &&
                   static_cast<std::size_t>(to) < n,
               "send: bad process");
  Shard* ctx = current_shard();
  const int sender_shard = shard_of_[static_cast<std::size_t>(from)];
  Shard& ss = *shards_[static_cast<std::size_t>(sender_shard)];
  // A worker may only send on behalf of its own processes; the coordinator
  // (global events, pre-run setup) may send for anyone — workers are parked.
  PARDSM_CHECK(ctx == nullptr || ctx == &ss,
               "send: sender does not live on the calling shard");

  Message m;
  m.from = from;
  m.to = to;
  m.body = std::move(body);
  m.meta = std::move(meta);
  m.send_time = ctx != nullptr ? ss.now : coordinator_now_;
  ss.stats.on_send(m);
  plan_and_schedule(ss, std::move(m));
}

void ParallelSimulator::plan_and_schedule(Shard& ss, Message&& m) {
  const ProcessId from = m.from;
  const ProcessId to = m.to;
  const std::uint64_t send_seq = send_seq_[static_cast<std::size_t>(from)]++;
  // Deterministic per-sender ids (the sequential engine's global counter
  // would depend on cross-process interleaving).
  m.id = ((static_cast<std::uint64_t>(from) + 1) << 40) | (send_seq + 1);

  const std::uint64_t ij =
      static_cast<std::uint64_t>(from) * endpoints_.size() +
      static_cast<std::uint64_t>(to);
  const std::uint64_t pair_k = ss.pair_seq.get_or_insert(ij, 0)++;

  // Mirror of Network::plan_delivery with counter-based streams: the
  // latency draw comes first, unconditionally, from the latency stream;
  // fault decisions and the duplicate copy's latency from the fault
  // stream.  Both are keyed on (seed, from, to, per-pair counter), so the
  // draws are a function of the message's logical coordinates only.
  Rng lat_rng = counter_rng(channel_seed_, static_cast<std::uint64_t>(from),
                            static_cast<std::uint64_t>(to), pair_k,
                            kTagLatency);
  const Duration lat = ss.latency->sample(from, to, lat_rng);
  PARDSM_CHECK(lat >= quantum_,
               "latency sample below the quantum — conservative window "
               "invariant violated");

  if (fault_net_->severed(from, to)) {
    ++ss.drops.severed;
    return;
  }
  if (fault_net_->is_down(from) || fault_net_->is_down(to)) {
    ++ss.drops.down;
    return;
  }
  Rng fault_rng = counter_rng(channel_seed_, static_cast<std::uint64_t>(from),
                              static_cast<std::uint64_t>(to), pair_k,
                              kTagFault);
  if (fault_rng.chance(fault_net_->effective_loss(from, to, m.send_time))) {
    ++ss.drops.loss;
    return;
  }

  DeliveryPlan deliveries;
  const bool fifo = options_.channel.fifo;
  const auto clamp_push = [&](TimePoint at) {
    if (fifo) {
      TimePoint& last = ss.last_delivery.get_or_insert(ij, TimePoint{});
      if (at <= last) at = last + micros(1);
      last = at;
    }
    deliveries.push(at);
  };
  clamp_push(m.send_time + lat);
  if (fault_rng.chance(
          fault_net_->effective_duplicate(from, to, m.send_time))) {
    clamp_push(m.send_time + ss.latency->sample(from, to, fault_rng));
  }

  Shard* ctx = current_shard();
  const int dest_shard = shard_of_[static_cast<std::size_t>(to)];
  Shard& ds = *shards_[static_cast<std::size_t>(dest_shard)];
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    PEvent ev;
    ev.when = deliveries[i];
    ev.klass = 0;
    ev.origin = from;
    ev.seq = (send_seq << 1) | static_cast<std::uint64_t>(i);
    ev.type = Event::Type::kDeliver;
    if (i + 1 < deliveries.size()) {
      ev.msg = m;  // duplicated delivery keeps a copy
    } else {
      ev.msg = std::move(m);
    }
    ev.msg.deliver_time = deliveries[i];
    if (ctx != nullptr && &ds != ctx) {
      // Cross-shard: parked in the sender's outbox until the barrier; the
      // coordinator merges it before the next window.  Delivery lands at
      // or after the window's end, so the detour is never late.
      ss.outbox.push_back(std::move(ev));
    } else {
      push_event(ds, std::move(ev));
    }
  }
}

void ParallelSimulator::set_timer(ProcessId who, Duration delay,
                                  TimerTag tag) {
  PARDSM_CHECK(frozen_, "set_timer before freeze()");
  PARDSM_CHECK(who >= 0 &&
                   static_cast<std::size_t>(who) < endpoints_.size(),
               "set_timer: bad process");
  PARDSM_CHECK(delay.us >= 0, "set_timer: negative delay");
  Shard* ctx = current_shard();
  Shard& owner =
      *shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(who)])];
  PARDSM_CHECK(ctx == nullptr || ctx == &owner,
               "set_timer: cross-shard timers are not supported (timers are "
               "process-local by contract)");
  PEvent ev;
  ev.when = (ctx != nullptr ? owner.now : coordinator_now_) + delay;
  ev.klass = 1;
  ev.origin = who;
  ev.seq = timer_seq_[static_cast<std::size_t>(who)]++;
  ev.type = Event::Type::kTimer;
  ev.timer_who = who;
  ev.timer_tag = tag;
  push_event(owner, std::move(ev));
}

void ParallelSimulator::schedule_at(TimePoint when, ProcessId owner,
                                    std::function<void()> fn) {
  freeze();
  PARDSM_CHECK(owner >= 0 &&
                   static_cast<std::size_t>(owner) < endpoints_.size(),
               "schedule_at: bad owner");
  Shard* ctx = current_shard();
  Shard& os =
      *shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(owner)])];
  PARDSM_CHECK(ctx == nullptr || ctx == &os,
               "schedule_at: owner does not live on the calling shard");
  PARDSM_CHECK(when >= (ctx != nullptr ? os.now : coordinator_now_),
               "schedule_at: time in the past");
  PEvent ev;
  ev.when = when;
  ev.klass = 2;
  ev.origin = owner;
  ev.seq = closure_seq_[static_cast<std::size_t>(owner)]++;
  ev.type = Event::Type::kClosure;
  ev.fire = std::move(fn);
  push_event(os, std::move(ev));
}

void ParallelSimulator::schedule_global(TimePoint when,
                                        std::function<void()> fn) {
  freeze();
  PARDSM_CHECK(current_shard() == nullptr,
               "schedule_global: coordinator/setup only");
  PARDSM_CHECK(when >= coordinator_now_, "schedule_global: time in the past");
  globals_.push_back({when, next_global_seq_++, std::move(fn)});
  std::push_heap(globals_.begin(), globals_.end(),
                 [](const GlobalEvent& a, const GlobalEvent& b) {
                   if (a.when != b.when) return a.when > b.when;
                   return a.seq > b.seq;
                 });
}

void ParallelSimulator::dispatch(Shard& shard, PEvent& e) {
  switch (e.type) {
    case Event::Type::kDeliver: {
      Message& m = e.msg;
      if (fault_net_->is_down(m.to)) {
        // In flight toward a process that crashed after the send: lost
        // with the crash, same as the sequential runtime.
        ++shard.drops.in_flight;
        return;
      }
      shard.stats.on_deliver(m);
      endpoints_[static_cast<std::size_t>(m.to)]->on_message(m);
      break;
    }
    case Event::Type::kTimer:
      endpoints_[static_cast<std::size_t>(e.timer_who)]->on_timer(
          e.timer_tag);
      break;
    case Event::Type::kClosure:
      e.fire();
      break;
  }
}

void ParallelSimulator::drain_window(Shard& shard, TimePoint window_end) {
  tl_shard_ctx = {this, &shard};
  while (!shard.heap.empty() && shard.heap.front().when < window_end) {
    std::pop_heap(shard.heap.begin(), shard.heap.end());
    PEvent e = std::move(shard.heap.back());
    shard.heap.pop_back();
    PARDSM_CHECK(e.when >= shard.now, "shard clock went backwards");
    shard.now = e.when;
    ++shard.events_fired;
    PARDSM_CHECK(shard.events_fired <= options_.max_events,
                 "simulation exceeded max_events — non-terminating "
                 "protocol?");
    dispatch(shard, e);
  }
  tl_shard_ctx = {};
}

void ParallelSimulator::worker_loop(unsigned w) {
  std::unique_lock lk(mu_);
  // Start from generation 0 unconditionally: the coordinator only advances
  // the generation after every worker acknowledged the previous one, so a
  // worker that reads the *current* generation here could silently skip
  // the first window and deadlock the barrier.
  std::uint64_t seen_gen = 0;
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_workers_ || generation_ != seen_gen;
    });
    if (stop_workers_) return;
    seen_gen = generation_;
    const TimePoint window_end = window_end_;
    lk.unlock();
    try {
      drain_window(*shards_[w], window_end);
    } catch (...) {
      tl_shard_ctx = {};
      lk.lock();
      worker_errors_[w] = std::current_exception();
      lk.unlock();
    }
    lk.lock();
    if (--working_ == 0) cv_done_.notify_one();
  }
}

void ParallelSimulator::run_window(TimePoint window_end) {
  std::unique_lock lk(mu_);
  window_end_ = window_end;
  working_ = static_cast<unsigned>(workers_.size());
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [&] { return working_ == 0; });
  for (auto& err : worker_errors_) {
    if (err) {
      const std::exception_ptr e = err;
      err = nullptr;
      lk.unlock();
      std::rethrow_exception(e);
    }
  }
}

void ParallelSimulator::run() {
  freeze();
  PARDSM_CHECK(!running_, "run: already running");
  running_ = true;

  worker_errors_.assign(options_.num_threads, nullptr);
  stop_workers_ = false;
  workers_.reserve(options_.num_threads);
  for (unsigned w = 0; w < options_.num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }

  const auto shutdown = [this] {
    {
      std::lock_guard lk(mu_);
      stop_workers_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
  };

  const auto global_min = [this] {
    return globals_.empty() ? kTimeForever : globals_.front().when;
  };
  const auto pop_global = [this] {
    std::pop_heap(globals_.begin(), globals_.end(),
                  [](const GlobalEvent& a, const GlobalEvent& b) {
                    if (a.when != b.when) return a.when > b.when;
                    return a.seq > b.seq;
                  });
    GlobalEvent g = std::move(globals_.back());
    globals_.pop_back();
    return g;
  };

  try {
    for (;;) {
      TimePoint shard_min = kTimeForever;
      bool have_shard_event = false;
      for (const auto& shard : shards_) {
        if (!shard->heap.empty()) {
          have_shard_event = true;
          shard_min = std::min(shard_min, shard->heap.front().when);
        }
      }
      const TimePoint g_min = global_min();
      if (!have_shard_event && globals_.empty()) break;

      if (g_min <= shard_min) {
        // Stop-the-world instant: every scenario event at this time fires
        // on the coordinator, before any same-time traffic — matching the
        // sequential engine, where scenario closures carry earlier
        // insertion sequence numbers than all run-time traffic.
        coordinator_now_ = g_min;
        while (!globals_.empty() && globals_.front().when == g_min) {
          GlobalEvent g = pop_global();
          ++coordinator_events_;
          g.fire();
        }
        continue;
      }

      const TimePoint window_start = shard_min;
      TimePoint window_end = window_start + quantum_;
      if (g_min < window_end) window_end = g_min;
      coordinator_now_ = window_start;
      run_window(window_end);

      // Merge the windows' cross-shard deliveries.  Heap order is the
      // canonical key, so merge order is irrelevant to execution order.
      std::uint64_t total_events = coordinator_events_;
      for (auto& src : shards_) {
        for (PEvent& ev : src->outbox) {
          Shard& dst = *shards_[static_cast<std::size_t>(
              shard_of_[static_cast<std::size_t>(ev.msg.to)])];
          push_event(dst, std::move(ev));
        }
        src->outbox.clear();
        total_events += src->events_fired;
      }
      PARDSM_CHECK(total_events <= options_.max_events,
                   "simulation exceeded max_events — non-terminating "
                   "protocol?");
    }
  } catch (...) {
    shutdown();
    running_ = false;
    throw;
  }
  shutdown();

  for (const auto& shard : shards_) {
    coordinator_now_ = std::max(coordinator_now_, shard->now);
    stats_.merge_from(shard->stats);
  }
  running_ = false;
}

DropCounters ParallelSimulator::drop_counters() const {
  DropCounters total;
  for (const auto& shard : shards_) {
    total.loss += shard->drops.loss;
    total.severed += shard->drops.severed;
    total.down += shard->drops.down;
    total.in_flight += shard->drops.in_flight;
  }
  return total;
}

std::size_t ParallelSimulator::fifo_pairs() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->last_delivery.size();
  return total;
}

std::size_t ParallelSimulator::state_bytes() const {
  std::size_t total = fault_net_ ? fault_net_->state_bytes() : 0;
  for (const auto& shard : shards_) {
    total +=
        shard->last_delivery.memory_bytes() + shard->pair_seq.memory_bytes();
  }
  return total;
}

std::uint64_t ParallelSimulator::events_fired() const {
  std::uint64_t total = coordinator_events_;
  for (const auto& shard : shards_) total += shard->events_fired;
  return total;
}

}  // namespace pardsm
