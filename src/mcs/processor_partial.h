// Processor consistency with partial replication — extension №2: an
// affirmative engineering answer to the paper's open question.
//
// The paper closes asking whether a consistency criterion *stronger than
// PRAM* can be efficiently implemented under partial replication.  This
// protocol guarantees PRAM ∧ cache consistency (the classic decomposition
// of Goodman's processor consistency): all processes see each writer's
// writes in program order, *and* all processes see the writes on each
// variable in one common (home-sequenced) order — strictly stronger than
// PRAM — while every message still stays inside C(x):
//
//   * per-variable home sequencing (inherited from CachePartialProcess);
//   * writes block until their own commit returns, so a writer's next
//     write is sequenced only after its previous one — the global
//     sequencing timeline respects every writer's program order;
//   * each commit carries, per receiver q, the number of the writer's
//     prior writes on variables q replicates; q buffers a commit until it
//     has applied that many — restoring cross-variable per-writer order
//     that independent homes cannot provide.
//
// Deadlock-free: the "must apply before" relation points backward in
// sequencing time, hence is acyclic; FIFO reliable channels deliver every
// needed commit.  The price is write latency (one home round trip per
// write), NOT control-information spread: Theorem 1's impossibility is
// about causal *transitivity through hoops*, which PRAM∧cache does not
// require.  bench_open_question.cpp measures both halves.
#pragma once

#include "mcs/cache_partial.h"

namespace pardsm::mcs {

/// One process of the processor-consistency (PRAM ∧ cache) protocol.
class ProcessorPartialProcess final : public CachePartialProcess {
 public:
  ProcessorPartialProcess(ProcessId self, const graph::Distribution& dist,
                          HistoryRecorder& recorder);

  [[nodiscard]] std::string name() const override {
    return "processor-partial";
  }

 protected:
  /// Re-veto what CachePartialProcess allows: PC buffers commits behind
  /// the prior-count gate, so an adopted copy could surface before the
  /// commits it depends on — recovery relies on the (gated) ARQ backlog.
  [[nodiscard]] bool resync_adoptable(VarId, ProcessId,
                                      const WriteId&) const override {
    return false;
  }

  [[nodiscard]] detail::PriorCounts prior_counts_for(VarId x) override;
  [[nodiscard]] bool commit_ready(const Message& m) override;
  void on_applied(ProcessId writer) override;

 private:
  /// sent_to_[q]: how many of my writes so far were on variables q holds.
  std::map<ProcessId, std::int64_t> sent_to_;
  /// applied_from_[w]: how many of w's commits I have applied.
  std::map<ProcessId, std::int64_t> applied_from_;
};

}  // namespace pardsm::mcs
