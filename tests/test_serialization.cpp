// Serialization finder (Definition 1 search) unit tests.

#include <gtest/gtest.h>

#include "history/orders.h"
#include "history/serialization.h"

namespace pardsm::hist {
namespace {

std::vector<OpIndex> all_ops(const History& h) {
  std::vector<OpIndex> out;
  for (std::size_t i = 0; i < h.size(); ++i) {
    out.push_back(static_cast<OpIndex>(i));
  }
  return out;
}

TEST(Serialization, TrivialSingleWrite) {
  History h(1, 1);
  h.push_write(0, 0, 1);
  const auto r = find_serialization(h, all_ops(h), program_order(h));
  EXPECT_EQ(r.verdict, SearchVerdict::kSerializable);
  EXPECT_TRUE(is_legal_serialization(h, all_ops(h), r.order,
                                     program_order(h)));
}

TEST(Serialization, ReadMustFollowItsWrite) {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, 1);
  const auto r = find_serialization(h, all_ops(h), program_order(h));
  ASSERT_EQ(r.verdict, SearchVerdict::kSerializable);
  EXPECT_EQ(r.order, (std::vector<OpIndex>{0, 1}));
}

TEST(Serialization, BottomReadMustComeFirst) {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, kBottom);
  const auto r = find_serialization(h, all_ops(h), Relation(h.size()));
  ASSERT_EQ(r.verdict, SearchVerdict::kSerializable);
  EXPECT_EQ(r.order, (std::vector<OpIndex>{1, 0}));
}

TEST(Serialization, BottomReadAfterForcedWriteIsRefuted) {
  // Constraint forces the write before the ⊥-read: impossible.
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, kBottom);
  Relation c(h.size());
  c.add(0, 1);
  const auto r = find_serialization(h, all_ops(h), c);
  EXPECT_EQ(r.verdict, SearchVerdict::kNotSerializable);
  EXPECT_TRUE(r.refuted_by_propagation);  // forced-edge cycle, no search
}

TEST(Serialization, InterveningWriteIsRefuted) {
  // w(x)1 ; w(x)2 ordered, and a read of 1 forced after w(x)2.
  History h(2, 1);
  h.push_write(0, 0, 1);   // op 0
  h.push_write(0, 0, 2);   // op 1 (program order after op 0)
  h.push_read(1, 0, 1);    // op 2 reads the OLD value
  Relation c = program_order(h);
  c.add(1, 2);  // read forced after the overwrite
  const auto r = find_serialization(h, all_ops(h), c);
  EXPECT_EQ(r.verdict, SearchVerdict::kNotSerializable);
}

TEST(Serialization, InterleavingFound) {
  // Classic: two writers, one reader sees old-then-new of different vars.
  History h(3, 2);
  h.push_write(0, 0, 1);      // w0(x)1
  h.push_write(1, 1, 2);      // w1(y)2
  h.push_read(2, 0, 1);       // r2(x)1
  h.push_read(2, 1, kBottom); // r2(y)⊥ : y's write must come after
  const auto r = find_serialization(h, all_ops(h), program_order(h));
  ASSERT_EQ(r.verdict, SearchVerdict::kSerializable);
  EXPECT_TRUE(
      is_legal_serialization(h, all_ops(h), r.order, program_order(h)));
}

TEST(Serialization, FreshReadOrderingConflictRefuted) {
  // p2 reads x=2 then x=1 while the constraint orders w(x)1 before w(x)2:
  // after w2 is placed, w1's value can never be the latest again.
  History h(3, 1);
  h.push_write(0, 0, 1);  // op 0
  h.push_write(0, 0, 2);  // op 1, program order 0 -> 1
  h.push_read(2, 0, 2);   // op 2
  h.push_read(2, 0, 1);   // op 3, program order 2 -> 3
  const auto r = find_serialization(h, all_ops(h), program_order(h));
  EXPECT_EQ(r.verdict, SearchVerdict::kNotSerializable);
}

TEST(Serialization, ConcurrentWritesBothOrdersWork) {
  // No constraint: both (1,2) placements possible; reader of 1 decides.
  History h(3, 1);
  h.push_write(0, 0, 1);
  h.push_write(1, 0, 2);
  h.push_read(2, 0, 2);
  const auto r = find_serialization(h, all_ops(h), Relation(h.size()));
  ASSERT_EQ(r.verdict, SearchVerdict::kSerializable);
  // The last write before the read must be value 2 (op 1).
  const auto pos = [&](OpIndex op) {
    return std::find(r.order.begin(), r.order.end(), op) - r.order.begin();
  };
  EXPECT_LT(pos(1), pos(2));
}

TEST(Serialization, SubsetSerializationIgnoresOutsideOps) {
  History h(2, 1);
  h.push_write(0, 0, 1);  // op 0
  h.push_write(1, 0, 2);  // op 1
  h.push_read(0, 0, 1);   // op 2
  // Serialize only p0's projection {0, 2}: trivially fine.
  const std::vector<OpIndex> subset{0, 2};
  const auto r = find_serialization(h, subset, program_order(h));
  EXPECT_EQ(r.verdict, SearchVerdict::kSerializable);
}

TEST(Serialization, ReadWhoseSourceIsOutsideSubsetIsRefuted) {
  History h(2, 1);
  h.push_write(0, 0, 1);  // op 0
  h.push_read(1, 0, 1);   // op 1 reads from op 0
  const std::vector<OpIndex> subset{1};  // source excluded
  const auto r = find_serialization(h, subset, Relation(h.size()));
  EXPECT_EQ(r.verdict, SearchVerdict::kNotSerializable);
}

TEST(Serialization, BudgetExhaustionReportsUnknown) {
  // A large, heavily concurrent instance with a 1-state budget.
  History h(6, 3);
  for (ProcessId p = 0; p < 6; ++p) {
    for (int i = 0; i < 3; ++i) {
      h.push_write(p, static_cast<VarId>(i), p * 10 + i + 1);
    }
  }
  SearchOptions options;
  options.max_states = 1;
  const auto r =
      find_serialization(h, all_ops(h), Relation(h.size()), options);
  EXPECT_EQ(r.verdict, SearchVerdict::kUnknown);
}

TEST(Serialization, WitnessValidatorRejectsBadOrders) {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, 1);
  const Relation po = program_order(h);
  EXPECT_FALSE(is_legal_serialization(h, all_ops(h), {1, 0}, po));
  EXPECT_FALSE(is_legal_serialization(h, all_ops(h), {0}, po));
  EXPECT_TRUE(is_legal_serialization(h, all_ops(h), {0, 1}, po));
}

TEST(Serialization, LargerHistoryStillExact) {
  // 4 processes × 5 ops with real conflicts still decide quickly.
  History h(4, 2);
  h.push_write(0, 0, 1);
  h.push_write(0, 1, 2);
  h.push_write(1, 0, 3);
  h.push_read(1, 1, 2);
  h.push_write(2, 1, 4);
  h.push_read(2, 0, 3);
  h.push_read(3, 0, 3);
  h.push_read(3, 1, 4);
  h.push_write(3, 0, 5);
  h.push_read(0, 0, 1);
  const auto r = find_serialization(h, all_ops(h), program_order(h));
  EXPECT_NE(r.verdict, SearchVerdict::kUnknown);
}

}  // namespace
}  // namespace pardsm::hist
