#include "mcs/driver.h"

#include "simnet/rng.h"
#include "simnet/thread_runtime.h"

namespace pardsm::mcs {

ScriptedClient::ScriptedClient(McsProcess& process, Simulator& sim,
                               Script script)
    : process_(process), sim_(sim), script_(std::move(script)) {}

void ScriptedClient::start(TimePoint start) {
  if (script_.empty()) return;
  sim_.schedule_at(start + script_.front().delay, [this] { issue(); });
}

void ScriptedClient::issue() {
  PARDSM_CHECK(next_ < script_.size(), "issue past end of script");
  const ScriptOp& op = script_[next_];
  ++next_;

  const auto continue_after = [this] {
    if (next_ >= script_.size()) return;
    const Duration delay = script_[next_].delay;
    if (delay.us == 0) {
      // Schedule at the current instant to keep the event loop in control
      // (still after any messages the completed op just enqueued at t).
      sim_.schedule_at(sim_.now(), [this] { issue(); });
    } else {
      sim_.schedule_at(sim_.now() + delay, [this] { issue(); });
    }
  };

  if (op.kind == ScriptOp::Kind::kRead) {
    process_.read(op.var, [this, continue_after](Value v) {
      reads_.push_back(v);
      continue_after();
    });
  } else {
    process_.write(op.var, op.value, continue_after);
  }
}

std::vector<Script> make_random_scripts(const graph::Distribution& dist,
                                        const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Script> scripts(dist.process_count());
  Value next_value = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto& mine = dist.per_process[p];
    if (mine.empty()) continue;
    Script& script = scripts[p];
    for (std::size_t i = 0; i < spec.ops_per_process; ++i) {
      const VarId x = mine[static_cast<std::size_t>(rng.below(mine.size()))];
      if (rng.chance(spec.read_fraction)) {
        script.push_back(ScriptOp::read(x, spec.think_time));
      } else {
        script.push_back(ScriptOp::write(x, next_value++, spec.think_time));
      }
    }
  }
  return scripts;
}

RunResult run_workload(ProtocolKind kind, const graph::Distribution& dist,
                       const std::vector<Script>& scripts,
                       RunOptions options) {
  PARDSM_CHECK(scripts.size() == dist.process_count(),
               "one script per process required");

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.channel = options.channel;
  sim_options.latency = std::move(options.latency);
  Simulator sim(std::move(sim_options));

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = make_processes(kind, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = sim.add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(sim);
  }

  std::vector<std::unique_ptr<ScriptedClient>> clients;
  clients.reserve(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    clients.push_back(
        std::make_unique<ScriptedClient>(*processes[p], sim, scripts[p]));
    clients.back()->start(kTimeZero);
  }

  sim.run();

  for (const auto& client : clients) {
    PARDSM_CHECK(client->done(),
                 "simulation quiesced before a client finished its script — "
                 "protocol lost a completion");
  }

  RunResult result;
  result.history = recorder.take_history();
  result.total_traffic = sim.stats().total();
  result.per_process_traffic = sim.stats().per_process_snapshot();
  for (const auto& proc : processes) {
    result.protocol_stats.push_back(proc->stats());
  }
  result.observed_relevant = sim.stats().exposure_sets(dist.var_count);
  result.finished_at = sim.now();
  result.events = sim.events_fired();
  return result;
}

namespace {

/// Self-driving client for the thread runtime: each completion issues the
/// next operation, always on the owning process's thread.
class ThreadedClient {
 public:
  ThreadedClient(McsProcess& process, Script script)
      : process_(process), script_(std::move(script)) {}

  /// Runs on the owner thread (via ThreadRuntime::post) and re-enters from
  /// completion callbacks, which also fire on the owner thread.
  void issue() {
    if (next_ >= script_.size()) {
      done_ = true;
      return;
    }
    const ScriptOp& op = script_[next_];
    ++next_;
    if (op.kind == ScriptOp::Kind::kRead) {
      process_.read(op.var, [this](Value v) {
        reads_.push_back(v);
        issue();
      });
    } else {
      process_.write(op.var, op.value, [this] { issue(); });
    }
  }

  [[nodiscard]] bool done() const { return done_ || script_.empty(); }

 private:
  McsProcess& process_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool done_ = false;
};

}  // namespace

RunResult run_workload_threaded(ProtocolKind kind,
                                const graph::Distribution& dist,
                                const std::vector<Script>& scripts,
                                std::chrono::milliseconds quiesce_timeout) {
  PARDSM_CHECK(scripts.size() == dist.process_count(),
               "one script per process required");

  ThreadRuntime rt;
  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = make_processes(kind, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = rt.add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(rt);
  }

  std::vector<std::unique_ptr<ThreadedClient>> clients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    clients.push_back(
        std::make_unique<ThreadedClient>(*processes[p], scripts[p]));
  }

  rt.start();
  for (std::size_t p = 0; p < clients.size(); ++p) {
    rt.post(static_cast<ProcessId>(p),
            [client = clients[p].get()] { client->issue(); });
  }
  const bool quiet = rt.await_quiescence(quiesce_timeout);
  PARDSM_CHECK(quiet, "thread runtime failed to quiesce — protocol stuck?");
  rt.stop();

  for (const auto& client : clients) {
    PARDSM_CHECK(client->done(), "threaded client did not finish its script");
  }

  RunResult result;
  result.history = recorder.take_history();
  result.total_traffic = rt.stats().total();
  result.per_process_traffic = rt.stats().per_process_snapshot();
  for (const auto& proc : processes) {
    result.protocol_stats.push_back(proc->stats());
  }
  result.observed_relevant = rt.stats().exposure_sets(dist.var_count);
  return result;
}

}  // namespace pardsm::mcs
