// Heap-allocation counter for benches that report allocs_per_op.
//
// A bench target that links alloc_hook.cpp replaces global operator new
// with a counting malloc shim (one relaxed atomic increment per
// allocation — noise-free enough for a per-op *count*, which is the
// point: the pooled message plane makes the steady-state count ~0, and
// the committed baseline pins it there).  Targets that do not link the
// hook keep the stock allocator and must not call allocs_so_far().
#pragma once

#include <cstdint>

namespace pardsm::benchutil {

/// Total operator-new calls in this process so far (monotone; diff
/// around a region of interest).
[[nodiscard]] std::uint64_t allocs_so_far() noexcept;

}  // namespace pardsm::benchutil
