// Parallel deterministic discrete-event simulator.
//
// ParallelSimulator shards the event queue across worker threads by
// process and synchronizes the shards with conservative barrier quanta:
// a window [T, T+Q) with Q no larger than the channel's minimum latency
// guarantees that every message sent inside the window delivers at or
// after the window's end, so shards can drain their local queues
// independently and exchange cross-shard deliveries at the barrier.
// No shard ever receives an event earlier than its local clock.
//
// Determinism story (docs/PARALLEL.md):
//
//   * Events are ordered by a *canonical key* (when, class, origin,
//     per-origin sequence) instead of global insertion order.  The key is
//     a pure function of the logical computation — which process sent or
//     armed what, and in which position of its own deterministic
//     execution — so each process handles its events in the same order
//     for ANY thread count and ANY OS interleaving.
//   * Channel randomness is *counter-based*: every send's latency and
//     fault draws come from a fresh generator keyed on (run seed, sender,
//     dest, per-pair message counter, stream tag) — see counter_rng().
//     The draws depend on coordinates, never on scheduling.
//   * Per-pair FIFO clamp state, per-pair counters, drop counters and
//     traffic stats are partitioned by shard (a process's rows are only
//     ever touched by its owning shard) and merged after the run.
//   * Fault state (severed pairs, down flags, probability windows) is
//     read-only during windows and mutated only by stop-the-world global
//     events (Scenario timelines) with every worker parked.
//
// The sequential Simulator remains the golden-bearing mode: it is
// untouched by this engine and keeps its sequential RNG draw order.  The
// parallel engine is a second HostTransport root, so ARQ/batching stacks
// and the MCS layer run unmodified above it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simnet/event_queue.h"
#include "simnet/network.h"
#include "simnet/pair_map.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm {

/// Configuration of a parallel simulation run.
struct ParallelSimOptions {
  std::uint64_t seed = 1;
  ChannelOptions channel;
  /// Latency model; null means constant 1ms.
  std::unique_ptr<LatencyModel> latency;
  /// Abort (throw) if more than this many events fire in total.
  std::uint64_t max_events = 50'000'000;
  /// Worker thread count == shard count.
  unsigned num_threads = 4;
  /// Barrier window size; {} (zero) derives the largest safe value from
  /// the latency model's lower_bound().  Must not exceed it.
  Duration quantum{};
  /// Explicit shard per process (size n, values in [0, num_threads)).
  /// Empty = round-robin by process id.  graph::shard_assignment derives
  /// one from the share graph (cells of near-disjoint topologies map to
  /// their own shards).
  std::vector<int> shard_of;
};

/// Multi-threaded deterministic event-loop Transport implementation.
class ParallelSimulator final : public HostTransport {
 public:
  explicit ParallelSimulator(ParallelSimOptions options);
  ~ParallelSimulator() override;

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Register the endpoint for the next free ProcessId (0, 1, 2, ...).
  ProcessId add_endpoint(Endpoint* ep) override;

  // -- Transport interface ------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  /// Current time: the calling worker's shard clock inside a window, the
  /// coordinator clock (window/global-event time) otherwise.
  [[nodiscard]] TimePoint now() const override;
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override {
    return endpoints_.size();
  }
  /// Per-shard concurrent arenas: a process allocates from its shard's
  /// pools (no cross-shard freelist contention on create), while atomic
  /// refcounts + locked recycle keep cross-shard deliveries safe.  Before
  /// freeze() the round-robin default assignment is used.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    const auto idx = static_cast<std::size_t>(owner);
    const std::size_t shard =
        idx < shard_of_.size()
            ? static_cast<std::size_t>(shard_of_[idx])
            : idx % arenas_.size();
    return *arenas_[shard];
  }

  // -- Execution control ---------------------------------------------------
  /// Schedule a closure at `when`, owned by process `owner` (the owner
  /// fixes the shard it runs on and its canonical ordering slot).  From a
  /// worker thread the owner must live on the calling shard.
  void schedule_at(TimePoint when, ProcessId owner, std::function<void()> fn);

  /// Schedule a stop-the-world closure at `when`: it runs on the
  /// coordinator with every worker parked, and may mutate fault state,
  /// crash processes and send on their behalf.  Scenario::apply uses this
  /// for partitions and crash/recover events.
  void schedule_global(TimePoint when, std::function<void()> fn);

  /// Materialize shards, channels and the fault network; endpoint
  /// registration freezes here.  Implied by run() and fault_network().
  void freeze();

  /// Run until every shard queue and the global timeline drain.
  void run();

  // -- Introspection --------------------------------------------------------
  /// Severed pairs, down flags and probability windows live here; during
  /// windows the workers read it concurrently, so it must only be mutated
  /// from global events (or before run()).
  [[nodiscard]] Network& fault_network();
  /// Declare the run's variable count before freeze(): every shard's
  /// exposure rows (and the merged view's) are pre-sized to it.
  void set_var_hint(std::size_t m);
  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  /// Channel drops by cause, merged over shards.
  [[nodiscard]] DropCounters drop_counters() const;
  /// Directed pairs holding FIFO clamp state, summed over shards.
  [[nodiscard]] std::size_t fifo_pairs() const;
  /// Bytes of per-pair channel state (all shards + fault network).
  [[nodiscard]] std::size_t state_bytes() const;
  [[nodiscard]] std::uint64_t events_fired() const;
  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] int shard_of(ProcessId p) const {
    return shard_of_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] Duration quantum() const { return quantum_; }

 private:
  /// A scheduled event with its canonical ordering key.  `klass` ranks
  /// deliveries before timers before closures at equal times; `origin` is
  /// the sending process (deliveries) or the owning process (timers,
  /// closures); `seq` is the origin's per-class counter at creation.
  struct PEvent {
    TimePoint when{};
    std::uint8_t klass = 0;  ///< 0=deliver, 1=timer, 2=closure
    ProcessId origin = kNoProcess;
    std::uint64_t seq = 0;

    Event::Type type = Event::Type::kClosure;
    Message msg;                    // kDeliver
    ProcessId timer_who = kNoProcess;  // kTimer
    std::uint64_t timer_tag = 0;
    std::function<void()> fire;     // kClosure

    /// Min-first canonical order (std::*_heap wants "less important").
    friend bool operator<(const PEvent& a, const PEvent& b) {
      if (a.when != b.when) return a.when > b.when;
      if (a.klass != b.klass) return a.klass > b.klass;
      if (a.origin != b.origin) return a.origin > b.origin;
      return a.seq > b.seq;
    }
  };

  /// One coordinator-scheduled stop-the-world closure.
  struct GlobalEvent {
    TimePoint when{};
    std::uint64_t seq = 0;
    std::function<void()> fire;
  };

  /// Everything one worker owns: its event heap, the channel state of its
  /// processes' outgoing pairs, its slice of the traffic ledger and the
  /// cross-shard deliveries the current window produced.
  struct Shard {
    std::vector<PEvent> heap;  ///< binary min-heap in canonical order
    std::unique_ptr<LatencyModel> latency;
    PairMap<TimePoint> last_delivery;  ///< FIFO clamp, sender-side pairs
    PairMap<std::uint64_t> pair_seq;   ///< per-pair send counter (RNG key)
    DropCounters drops;
    NetworkStats stats;
    TimePoint now{};
    std::uint64_t events_fired = 0;
    std::vector<PEvent> outbox;  ///< deliveries bound for other shards
  };

  void push_event(Shard& shard, PEvent e);
  void drain_window(Shard& shard, TimePoint window_end);
  void dispatch(Shard& shard, PEvent& e);
  /// Mirror of Network::plan_delivery over counter-based streams and the
  /// calling shard's clamp state; appends deliver events locally or to the
  /// outbox.
  void plan_and_schedule(Shard& shard, Message&& m);
  void worker_loop(unsigned w);
  void run_window(TimePoint window_end);
  [[nodiscard]] Shard* current_shard() const;

  ParallelSimOptions options_;
  Duration quantum_{};
  std::uint64_t channel_seed_ = 0;
  std::vector<Endpoint*> endpoints_;
  std::vector<int> shard_of_;
  /// Stable storage: Shard holds a NetworkStats (not movable) and workers
  /// keep references across the whole run.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// One concurrent BodyArena per shard, created up-front (arena() must
  /// work before freeze so protocols can cache pool handles at attach).
  std::vector<std::unique_ptr<BodyArena>> arenas_;
  std::size_t var_hint_ = 0;
  /// Fault state (severed / down / rate overrides) shared read-only
  /// during windows; its own RNG streams and clamp state are unused.
  std::unique_ptr<Network> fault_net_;
  NetworkStats stats_;  ///< merged view, filled at the end of run()
  /// Per-process canonical sequence counters, touched only by the owner's
  /// shard (or the coordinator while workers are parked).
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> timer_seq_;
  std::vector<std::uint64_t> closure_seq_;
  std::vector<GlobalEvent> globals_;  ///< min-heap by (when, seq)
  std::uint64_t next_global_seq_ = 0;
  std::uint64_t coordinator_events_ = 0;
  TimePoint coordinator_now_{};
  bool frozen_ = false;
  bool running_ = false;

  // -- worker parking -------------------------------------------------------
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  TimePoint window_end_{};
  unsigned working_ = 0;
  bool stop_workers_ = false;
  std::vector<std::exception_ptr> worker_errors_;
};

}  // namespace pardsm
