// Per-process variable store with write provenance.
//
// Each MCS process keeps local copies of exactly the variables in X_i
// (partial replication) or of every variable (full replication).  Stored
// values carry the WriteId of the write that produced them, so that reads
// recorded into histories have an exact read-from source.
//
// Storage is dense: values live in a flat slot array and a VarId → slot
// table (built once from the distribution) turns every get/put into two
// indexed loads — no tree walk per protocol read/write.
#pragma once

#include <cstdint>
#include <vector>

#include "simnet/ids.h"

namespace pardsm::mcs {

/// A stored value plus its provenance.
struct Stored {
  Value value = kBottom;
  WriteId source{};  ///< kInitialWrite for the initial ⊥
};

/// The local replica set of one MCS process.
class ReplicaStore {
 public:
  /// Construct holding exactly `vars` (every entry initialized to ⊥).
  explicit ReplicaStore(const std::vector<VarId>& vars = {});

  /// True if x is locally replicated.
  [[nodiscard]] bool holds(VarId x) const { return slot_of(x) >= 0; }

  /// Current content of x.  Requires holds(x).
  [[nodiscard]] const Stored& get(VarId x) const;

  /// Overwrite x with (value, source).  Requires holds(x).
  void put(VarId x, Value value, WriteId source);

  /// Locally replicated variables (sorted).
  [[nodiscard]] std::vector<VarId> vars() const { return vars_; }

  /// Number of applied puts (diagnostics).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  /// Slot of x, or -1 when x is not replicated here.
  [[nodiscard]] std::int32_t slot_of(VarId x) const {
    const auto xi = static_cast<std::size_t>(x);
    return x >= 0 && xi < slot_of_.size() ? slot_of_[xi] : -1;
  }

  std::vector<Stored> data_;          ///< one slot per replicated variable
  std::vector<std::int32_t> slot_of_; ///< VarId → slot, -1 = not held
  std::vector<VarId> vars_;           ///< sorted replicated variables
  std::uint64_t version_ = 0;
};

}  // namespace pardsm::mcs
