#include "mcs/sequencer_sc.h"

#include "simnet/wire.h"

namespace pardsm::mcs {

struct SeqWriteRequest final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  TimePoint invoked{};

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kSeqWriteRequest;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    wire::put_time(w, invoked);
  }
};

struct SeqWriteCommit final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::int64_t gseq = 0;
  ProcessId requester = kNoProcess;
  TimePoint invoked{};

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kSeqWriteCommit;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    w.i64(gseq);
    w.i32(requester);
    wire::put_time(w, invoked);
  }
};

namespace {

const wire::BodyRegistrar seq_req_codec(
    wire::kSeqWriteRequest, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<SeqWriteRequest>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->invoked = wire::get_time(r);
      return BodyRef::adopt(b);
    });

const wire::BodyRegistrar seq_commit_codec(
    wire::kSeqWriteCommit, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<SeqWriteCommit>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->gseq = r.i64();
      b->requester = r.i32();
      b->invoked = wire::get_time(r);
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kWriteReqKind("WREQ");
const KindId kCommitKind("WCMT");

}  // namespace

SequencerScProcess::SequencerScProcess(ProcessId self,
                                       const graph::Distribution& dist,
                                       HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder) {}

void SequencerScProcess::on_attach() {
  request_pool_ = &arena().pool<SeqWriteRequest>();
  commit_pool_ = &arena().pool<SeqWriteCommit>();
}

void SequencerScProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void SequencerScProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();
  waiting_[wid] = std::move(done);
  invoked_at_[wid] = t;
  ++mutable_stats().writes;

  if (id() == kSequencer) {
    sequence_write(x, v, wid, id(), t);
    return;
  }
  auto* body = request_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->invoked = t;

  MessageMeta meta;
  meta.kind = kWriteReqKind;
  meta.control_bytes = 16 + 8;
  meta.payload_bytes = 8;
  meta.vars_mentioned = {x};
  emit_to(kSequencer, BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
}

void SequencerScProcess::sequence_write(VarId x, Value v, WriteId wid,
                                        ProcessId requester,
                                        TimePoint invoked) {
  // A duplicated request must not be sequenced twice.
  if (!sequenced_ids_.insert(wid)) return;
  ++global_seq_;
  ++sequenced_;
  auto* body = commit_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->gseq = global_seq_;
  body->requester = requester;
  body->invoked = invoked;

  // Urgent: the requester's write completes only when its commit lands.
  SendPlan plan;
  plan.body = BodyRef::adopt(body);
  plan.meta.kind = kCommitKind;
  plan.meta.control_bytes = 16 + 8 + 8 + 8;
  plan.meta.payload_bytes = 8;
  plan.meta.vars_mentioned = {x};
  plan.urgent = true;
  for (ProcessId q : replicas_of(x)) {
    if (q != id()) plan.to.push_back(q);
  }
  emit(std::move(plan));
  // Local application on the sequencer (if it replicates x).
  if (replicates(x)) {
    apply_commit(x, v, wid, requester, invoked, global_seq_);
  } else if (requester == id()) {
    PARDSM_CHECK(false, "writer must replicate its own variable");
  }
}

void SequencerScProcess::apply_commit(VarId x, Value v, WriteId wid,
                                      ProcessId requester, TimePoint invoked,
                                      std::int64_t gseq) {
  // Duplicate suppression: commits arrive in ascending gseq (FIFO from the
  // sequencer); a late duplicate must not revert the replica.
  if (gseq <= last_gseq_applied_) return;
  last_gseq_applied_ = gseq;
  if (replicates(x)) {
    mutable_store().put(x, v, wid);
    ++mutable_stats().updates_applied;
  }
  if (requester == id()) {
    // Our own write is now globally ordered and locally applied: complete.
    recorder().record_write(id(), x, v, wid, invoked, now());
    auto it = waiting_.find(wid);
    PARDSM_CHECK(it != waiting_.end(), "commit for unknown pending write");
    auto done = std::move(it->second);
    waiting_.erase(it);
    invoked_at_.erase(wid);
    done();
  }
}

void SequencerScProcess::handle_message(const Message& m) {
  if (const auto* req = m.try_as<SeqWriteRequest>()) {
    PARDSM_CHECK(id() == kSequencer, "write request sent to non-sequencer");
    sequence_write(req->x, req->v, req->id, m.from, req->invoked);
    return;
  }
  const auto* commit = m.as<SeqWriteCommit>();
  PARDSM_CHECK(commit != nullptr, "sequencer-sc: unexpected message body");
  apply_commit(commit->x, commit->v, commit->id, commit->requester,
               commit->invoked, commit->gseq);
}

}  // namespace pardsm::mcs
