// Efficiency analysis: the paper's claims reduced to numbers.
//
// Two halves:
//
//  * analyze_run — compare a run's *observed* per-variable metadata
//    exposure against the Theorem 1 prediction (R(x) = C(x) ∪ hoop
//    members) and against the efficient-partial-replication ideal (C(x)
//    alone).  "Efficient" in the paper's sense = nobody outside C(x) ever
//    handles x-information.
//
//  * predict — the analytic control-information model: expected messages
//    and control bytes per write for each protocol on a given
//    distribution, used by bench_control_overhead to cross-check measured
//    traffic.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "mcs/protocol.h"
#include "sharegraph/hoops.h"

namespace pardsm::core {

/// Per-variable comparison of prediction vs observation.
struct VariableReport {
  VarId var = kNoVar;
  std::set<ProcessId> clique;             ///< C(x)
  std::set<ProcessId> theorem1_relevant;  ///< R(x)
  std::set<ProcessId> observed;           ///< processes exposed to x

  /// Exposure never left C(x): the efficient-partial-replication ideal.
  [[nodiscard]] bool within_clique() const;
  /// Exposure stayed inside the Theorem 1 set.
  [[nodiscard]] bool within_relevant() const;
};

/// Whole-run report.
struct EfficiencyReport {
  std::vector<VariableReport> per_var;
  std::size_t vars_leaking_past_clique = 0;
  std::size_t vars_leaking_past_relevant = 0;
  ProcessTraffic traffic;

  /// True iff every variable's exposure stayed within C(x) — the paper's
  /// "efficient partial replication implementation" criterion.
  [[nodiscard]] bool efficient() const {
    return vars_leaking_past_clique == 0;
  }

  /// Aligned text table (one row per variable), for benches and examples.
  [[nodiscard]] std::string to_table() const;
};

/// Build the report for one run.
[[nodiscard]] EfficiencyReport analyze_run(
    const graph::Distribution& dist,
    const std::vector<std::set<ProcessId>>& observed_relevance,
    const ProcessTraffic& traffic);

/// Analytic control-information model (per application write, averaged
/// over variables assuming uniform write load).
struct ControlModel {
  double messages_per_write = 0;
  double control_bytes_per_write = 0;
  double recipients_outside_clique = 0;  ///< processes beyond C(x) touched
};

/// Expected cost per write for `kind` on `dist`.
[[nodiscard]] ControlModel predict(mcs::ProtocolKind kind,
                                   const graph::Distribution& dist);

}  // namespace pardsm::core
