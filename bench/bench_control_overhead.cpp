// S1 — the §3.3 scalability argument, quantified.
//
// Control-information cost per application write as the system grows, for
// every protocol, with the analytic prediction (core::predict) printed
// next to the measurement.  Expected shape:
//
//   causal-full / causal-partial-naive : grows linearly in n (vector
//                                        clocks to everyone)
//   causal-partial-adhoc               : grows with hoop structure only
//   pram-partial / slow-partial        : flat (O(1) per update, C(x) only)
//   sequencer-sc                       : flat per write but centralised
//   atomic-home                        : flat, but reads are RPCs

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/analysis.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

std::vector<Script> write_heavy_scripts(const graph::Distribution& dist,
                                        std::size_t ops,
                                        std::uint64_t seed) {
  WorkloadSpec spec;
  spec.ops_per_process = ops;
  spec.read_fraction = 0.25;
  spec.seed = seed;
  return make_random_scripts(dist, spec);
}

void sweep(bu::Harness& h, const std::string& label,
           const std::function<graph::Distribution(std::size_t)>& topo) {
  bu::banner("S1 control overhead on " + label);
  bu::row({"protocol", "n", "msgs/write", "ctrl-B/write", "predicted",
           "outside-C/wr"});
  for (auto kind : all_protocols()) {
    for (std::size_t n : {4u, 8u, 16u, 32u}) {
      const auto dist = topo(n);
      const auto scripts = write_heavy_scripts(dist, 6, n);
      std::size_t writes = 0;
      for (const auto& s : scripts) {
        for (const auto& op : s) {
          if (op.kind == ScriptOp::Kind::kWrite) ++writes;
        }
      }
      if (writes == 0) continue;
      const auto run = run_workload(kind, dist, scripts, {});
      // wall_ns times a second, warm run of the identical (deterministic)
      // workload so the row measures the engine, not cold-start noise.
      const std::uint64_t wall_ns =
          bu::time_ns([&] { (void)run_workload(kind, dist, scripts, {}); });
      const auto model = core::predict(kind, dist);
      bu::row({to_string(kind), bu::num(static_cast<std::uint64_t>(n)),
               bu::num(static_cast<double>(run.total_traffic.msgs_sent) /
                           static_cast<double>(writes),
                       2),
               bu::num(static_cast<double>(
                           run.total_traffic.control_bytes_sent) /
                           static_cast<double>(writes),
                       1),
               bu::num(model.control_bytes_per_write, 1),
               bu::num(model.recipients_outside_clique, 2)});
      h.record(
          {.label = label + "-n" + std::to_string(n),
           .protocol = to_string(kind),
           .distribution = dist.name,
           .ops = run.history.size(),
           .messages = run.total_traffic.msgs_sent,
           .bytes = run.total_traffic.wire_bytes_sent(),
           .sim_time_ms = static_cast<double>(run.finished_at.us) / 1000.0,
           .wall_ns = wall_ns,
           .extra = {{"writes", static_cast<double>(writes)},
                     {"msgs_per_write",
                      static_cast<double>(run.total_traffic.msgs_sent) /
                          static_cast<double>(writes)},
                     {"ctrl_bytes_per_write",
                      static_cast<double>(
                          run.total_traffic.control_bytes_sent) /
                          static_cast<double>(writes)},
                     {"predicted_ctrl_bytes_per_write",
                      model.control_bytes_per_write}}});
    }
  }
  std::cout << "(prediction assumes uniform write load; sequencer/atomic "
               "rows also pay per-read costs not shown here)\n";
}

void BM_ControlSweep(benchmark::State& state, ProtocolKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dist = graph::topo::random_replication(n, 2 * n, 3, 11);
  const auto scripts = write_heavy_scripts(dist, 5, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_workload(kind, dist, scripts, {}));
  }
}
BENCHMARK_CAPTURE(BM_ControlSweep, pram, ProtocolKind::kPramPartial)
    ->Range(4, 32);
BENCHMARK_CAPTURE(BM_ControlSweep, causal_naive,
                  ProtocolKind::kCausalPartialNaive)
    ->Range(4, 32);
BENCHMARK_CAPTURE(BM_ControlSweep, causal_full, ProtocolKind::kCausalFull)
    ->Range(4, 32);
BENCHMARK_CAPTURE(BM_ControlSweep, adhoc, ProtocolKind::kCausalPartialAdHoc)
    ->Range(4, 32);

void BM_PredictModel(benchmark::State& state) {
  const auto dist = graph::topo::random_replication(24, 48, 3, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::predict(ProtocolKind::kCausalPartialAdHoc, dist));
  }
}
BENCHMARK(BM_PredictModel);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "control_overhead");
  sweep(h, "rings", [](std::size_t n) { return graph::topo::ring(n); });
  sweep(h, "random-r3", [](std::size_t n) {
    return graph::topo::random_replication(n, 2 * n, std::min<std::size_t>(3, n),
                                           17);
  });
  sweep(h, "open-chain", [](std::size_t n) {
    return graph::topo::open_chain(n);
  });
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
