// Remaining substrate units: replica store, recorder, scripted clients,
// ARQ give-up, efficiency-report rendering.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "mcs/driver.h"
#include "mcs/recorder.h"
#include "mcs/replica_store.h"
#include "sharegraph/topologies.h"

namespace pardsm {
namespace {

// ------------------------------------------------------------ ReplicaStore
TEST(ReplicaStore, InitializesToBottom) {
  mcs::ReplicaStore store({0, 2});
  EXPECT_TRUE(store.holds(0));
  EXPECT_FALSE(store.holds(1));
  EXPECT_TRUE(store.holds(2));
  EXPECT_EQ(store.get(0).value, kBottom);
  EXPECT_EQ(store.get(0).source, kInitialWrite);
}

TEST(ReplicaStore, PutUpdatesValueAndProvenance) {
  mcs::ReplicaStore store({0});
  store.put(0, 42, WriteId{3, 7});
  EXPECT_EQ(store.get(0).value, 42);
  EXPECT_EQ(store.get(0).source, (WriteId{3, 7}));
  EXPECT_EQ(store.version(), 1u);
}

TEST(ReplicaStore, AccessOutsideReplicaSetThrows) {
  mcs::ReplicaStore store({0});
  EXPECT_THROW((void)store.get(1), std::logic_error);
  EXPECT_THROW(store.put(1, 5, WriteId{0, 0}), std::logic_error);
}

TEST(ReplicaStore, VarsSorted) {
  mcs::ReplicaStore store({5, 1, 3});
  EXPECT_EQ(store.vars(), (std::vector<VarId>{1, 3, 5}));
}

// -------------------------------------------------------------- Recorder
TEST(Recorder, PreservesProgramOrderPerProcess) {
  mcs::HistoryRecorder rec(2, 2);
  rec.record_write(0, 0, 1, WriteId{0, 0}, TimePoint{1}, TimePoint{2});
  rec.record_read(1, 0, 1, WriteId{0, 0}, TimePoint{3}, TimePoint{4});
  rec.record_write(0, 1, 2, WriteId{0, 1}, TimePoint{5}, TimePoint{6});
  const auto h = rec.history();
  ASSERT_EQ(h.size(), 3u);
  EXPECT_EQ(h.ops_of(0).size(), 2u);
  EXPECT_EQ(h.op(h.ops_of(0)[0]).var, 0);
  EXPECT_EQ(h.op(h.ops_of(0)[1]).var, 1);
  // Provenance and intervals survive.
  const auto src = h.resolve_read_from();
  EXPECT_EQ(src[1], 0);
  EXPECT_EQ(h.op(0).invoked, TimePoint{1});
  EXPECT_EQ(h.op(0).responded, TimePoint{2});
}

// ------------------------------------------------------------- Scripted
TEST(ScriptedClient, ThinkTimeDelaysOperations) {
  const auto dist = graph::topo::complete(2, 1);
  std::vector<mcs::Script> scripts(2);
  scripts[0] = {mcs::ScriptOp::write(0, 1, millis(10)),
                mcs::ScriptOp::write(0, 2, millis(10))};
  mcs::RunOptions options;
  const auto run =
      mcs::run_workload(mcs::ProtocolKind::kPramPartial, dist, scripts,
                        std::move(options));
  // Second write issued 10ms after the first completed.
  const auto& h = run.history;
  ASSERT_EQ(h.ops_of(0).size(), 2u);
  EXPECT_GE((h.op(h.ops_of(0)[1]).invoked - h.op(h.ops_of(0)[0]).invoked).us,
            millis(10).us);
}

TEST(ScriptedClient, ReadResultsCollected) {
  const auto dist = graph::topo::complete(2, 1);
  Simulator sim;
  mcs::HistoryRecorder rec(2, 1);
  auto procs = mcs::make_processes(mcs::ProtocolKind::kPramPartial, dist, rec);
  for (auto& p : procs) {
    sim.add_endpoint(p.get());
    p->attach(sim);
  }
  mcs::ScriptedClient writer(*procs[0], sim,
                             {mcs::ScriptOp::write(0, 9)});
  mcs::ScriptedClient reader(
      *procs[1], sim, {mcs::ScriptOp::read(0, millis(100))});
  writer.start(kTimeZero);
  reader.start(kTimeZero);
  sim.run();
  ASSERT_EQ(reader.read_results().size(), 1u);
  EXPECT_EQ(reader.read_results()[0], 9);
}

TEST(Workloads, RandomScriptsOnlyTouchOwnVariables) {
  const auto dist = graph::topo::random_replication(6, 5, 2, 3);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 20;
  spec.seed = 9;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  for (std::size_t p = 0; p < scripts.size(); ++p) {
    for (const auto& op : scripts[p]) {
      EXPECT_TRUE(dist.holds(static_cast<ProcessId>(p), op.var))
          << "p" << p << " script touches foreign x" << op.var;
    }
  }
}

TEST(Workloads, WriteValuesGloballyUnique) {
  const auto dist = graph::topo::random_replication(5, 4, 3, 4);
  mcs::WorkloadSpec spec;
  spec.ops_per_process = 15;
  spec.read_fraction = 0.3;
  const auto scripts = mcs::make_random_scripts(dist, spec);
  std::set<Value> seen;
  for (const auto& script : scripts) {
    for (const auto& op : script) {
      if (op.kind == mcs::ScriptOp::Kind::kWrite) {
        EXPECT_TRUE(seen.insert(op.value).second) << op.value;
      }
    }
  }
}

// -------------------------------------------------------------- Analysis
TEST(AnalysisReport, TableMentionsLeaks) {
  const auto dist = graph::topo::chain_with_hoop(4);
  std::vector<std::set<ProcessId>> observed(dist.var_count);
  observed[0] = {0, 1, 2, 3};  // x leaked everywhere
  const auto report = core::analyze_run(dist, observed, {});
  EXPECT_FALSE(report.efficient());
  const auto table = report.to_table();
  EXPECT_NE(table.find("x0"), std::string::npos);
  EXPECT_NE(table.find("leaking past C(x): 1/"), std::string::npos);
}

TEST(AnalysisReport, WithinRelevantDistinguishedFromWithinClique) {
  const auto dist = graph::topo::chain_with_hoop(4);
  std::vector<std::set<ProcessId>> observed(dist.var_count);
  observed[0] = {0, 1, 2, 3};  // the whole hoop: inside R(x), outside C(x)
  const auto report = core::analyze_run(dist, observed, {});
  EXPECT_EQ(report.vars_leaking_past_clique, 1u);
  EXPECT_EQ(report.vars_leaking_past_relevant, 0u);
}

}  // namespace
}  // namespace pardsm
