// Determinism regression for the parallel engine: five runs of the same
// (config, seed) must produce byte-identical result ledgers — history,
// traffic, exposure, replica contents, event count, finish time, and for
// scenario runs the drop counters and ARQ ledger too.  The parallel
// engine's entire claim is that physical scheduling (thread wakeup order,
// OS jitter) never reaches logical results; this suite is the regression
// tripwire for that claim, run both lossless and under a lossy healing
// scenario where drop bookkeeping is racy if anything at all is racy.

#include <gtest/gtest.h>

#include <sstream>

#include "mcs/driver.h"
#include "scenario_families.h"
#include "sharegraph/topologies.h"

namespace pardsm::mcs {
namespace {

constexpr int kRuns = 5;

/// Serialize everything observable about a run into one comparable blob.
std::string ledger(const RunResult& r) {
  std::ostringstream out;
  out << r.history.to_string() << '\n';
  const auto traffic = [&out](const ProcessTraffic& t) {
    out << t.msgs_sent << ' ' << t.msgs_received << ' '
        << t.control_bytes_sent << ' ' << t.control_bytes_received << ' '
        << t.payload_bytes_sent << ' ' << t.payload_bytes_received << '\n';
  };
  traffic(r.total_traffic);
  for (const auto& t : r.per_process_traffic) traffic(t);
  for (const auto& observers : r.observed_relevant) {
    for (ProcessId p : observers) out << p << ' ';
    out << '\n';
  }
  for (const auto& replica : r.final_replicas) {
    for (const auto& e : replica) {
      out << e.x << '=' << e.value << '@' << e.source.writer << ':'
          << e.source.seq << ' ';
    }
    out << '\n';
  }
  out << r.events << ' ' << r.finished_at.us << ' '
      << r.active_channel_pairs << ' ' << r.channel_state_bytes << '\n';
  return out.str();
}

std::string ledger(const ScenarioRunResult& r) {
  std::ostringstream out;
  out << ledger(static_cast<const RunResult&>(r));
  out << r.used_reliable_transport << ' ' << r.retransmissions << '\n';
  out << r.drops.loss << ' ' << r.drops.severed << ' ' << r.drops.down
      << ' ' << r.drops.in_flight << '\n';
  out << r.crashes << ' ' << r.resync_messages << ' ' << r.resync_bytes
      << ' ' << r.resync_values_applied << ' '
      << r.max_recovery_latency.us << '\n';
  return out.str();
}

class ParallelDeterminism : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ParallelDeterminism, FiveLosslessRunsAreByteIdentical) {
  const ProtocolKind kind = GetParam();
  const auto dist = graph::topo::sharded(3, 3, 6);

  WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.read_fraction = 0.4;
  spec.seed = 42;
  spec.think_time = millis(1);
  const auto scripts = make_random_scripts(dist, spec);

  std::string first;
  for (int i = 0; i < kRuns; ++i) {
    RunOptions options;
    options.sim_seed = 7;
    options.latency = std::make_unique<UniformLatency>(millis(1), millis(4));
    const std::string got =
        ledger(run_workload_parallel(kind, dist, scripts, 4, std::move(options)));
    if (i == 0) {
      first = got;
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(got, first) << "run " << i << " diverged";
    }
  }
}

TEST_P(ParallelDeterminism, FiveLossyScenarioRunsAreByteIdentical) {
  const ProtocolKind kind = GetParam();
  const auto dist = graph::topo::clusters(2, 3, true);

  WorkloadSpec spec;
  spec.ops_per_process = 4;
  spec.read_fraction = 0.4;
  spec.seed = 99;
  spec.think_time = millis(1);
  const auto scripts = make_single_writer_scripts(dist, spec);

  const Scenario scenario =
      golden::make_fault_scenario(golden::FaultFamily::kLoss, 0.15);

  std::string first;
  std::uint64_t dropped = 0;
  for (int i = 0; i < kRuns; ++i) {
    RunOptions options;
    options.sim_seed = 13;
    const ScenarioRunResult r = run_scenario_parallel(
        kind, dist, scripts, scenario, 4, std::move(options));
    const std::string got = ledger(r);
    if (i == 0) {
      first = got;
      dropped = r.drops.total();
      EXPECT_TRUE(r.used_reliable_transport);
    } else {
      EXPECT_EQ(got, first) << "run " << i << " diverged";
    }
  }
  // The scenario must actually exercise the drop bookkeeping, or the
  // "including drop counters" half of this regression is vacuous.
  EXPECT_GT(dropped, 0u);
}

std::string determinism_name(
    const ::testing::TestParamInfo<ProtocolKind>& info) {
  std::string s = to_string(info.param);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ParallelDeterminism,
                         ::testing::ValuesIn(all_protocols()),
                         determinism_name);

}  // namespace
}  // namespace pardsm::mcs
