// E2 — Figure 2 and the §3.3 cost argument: hoop enumeration vs hoop
// existence.
//
// The paper: "enumerating all the hoops can be very long because it
// amounts to enumerate a set of paths in a graph that can be very big".
// The table shows enumeration blowing up combinatorially on dense random
// share graphs while the polynomial max-flow membership test (Theorem 1
// sets without enumeration) stays flat.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sharegraph/hoops.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::graph;
namespace bu = pardsm::benchutil;

void print_table(bu::Harness& h) {
  bu::banner("E2: x-hoop enumeration vs polynomial membership (x = var 0)");
  bu::row({"topology", "n", "hoops", "truncated", "enum-ms", "flow-ms",
           "|R(x)|"});
  struct CaseDef {
    std::string name;
    Distribution dist;
  };
  std::vector<CaseDef> cases;
  for (std::size_t n : {8u, 16u, 32u}) {
    cases.push_back({"ring-" + std::to_string(n), topo::ring(n)});
  }
  for (std::size_t n : {8u, 10u, 12u}) {
    cases.push_back({"random-r3-" + std::to_string(n),
                     topo::random_replication(n, 2 * n, 3, 5)});
  }
  cases.push_back({"grid-4x4", topo::grid(4, 4)});
  cases.push_back({"clusters-4x3", topo::clusters(4, 3, true)});

  for (const auto& c : cases) {
    const ShareGraph sg(c.dist);
    HoopEnumeration e;
    const double enum_ms = bu::time_ms(
        [&] { e = enumerate_hoops(sg, 0, /*limit=*/200000); });
    std::set<ProcessId> rel;
    const double flow_ms = bu::time_ms([&] { rel = x_relevant(sg, 0); });
    bu::row({c.name, bu::num(static_cast<std::uint64_t>(sg.process_count())),
             bu::num(static_cast<std::uint64_t>(e.hoops.size())),
             e.truncated ? "YES" : "no", bu::num(enum_ms, 3),
             bu::num(flow_ms, 3),
             bu::num(static_cast<std::uint64_t>(rel.size()))});
    h.record({.label = c.name,
              .distribution = c.dist.name,
              .wall_ns = static_cast<std::uint64_t>((enum_ms + flow_ms) * 1e6),
              .extra = {{"hoops", static_cast<double>(e.hoops.size())},
                        {"truncated", e.truncated ? 1.0 : 0.0},
                        {"enum_ms", enum_ms},
                        {"flow_ms", flow_ms},
                        {"relevant", static_cast<double>(rel.size())}}});
  }
  std::cout << "(expected shape: enumeration cost explodes on dense random "
               "graphs;\n flow-based membership stays polynomial — §3.3)\n";
}

void BM_EnumerateHoopsRing(benchmark::State& state) {
  const ShareGraph sg(topo::ring(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_hoops(sg, 0, 1u << 18));
  }
}
BENCHMARK(BM_EnumerateHoopsRing)->Range(8, 64);

void BM_EnumerateHoopsRandom(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ShareGraph sg(topo::random_replication(n, 2 * n, 3, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_hoops(sg, 0, 1u << 16));
  }
}
BENCHMARK(BM_EnumerateHoopsRandom)->DenseRange(6, 12, 2);

void BM_HoopMembershipFlow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ShareGraph sg(topo::random_replication(n, 2 * n, 3, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hoop_members(sg, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HoopMembershipFlow)->Range(8, 64)->Complexity();

void BM_HoopExists(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ShareGraph sg(topo::ring(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hoop_exists(sg, 0));
  }
}
BENCHMARK(BM_HoopExists)->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "fig2_hoops");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
