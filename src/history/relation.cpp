#include "history/relation.h"

#include "simnet/check.h"

namespace pardsm::hist {

Relation::Relation(std::size_t n) : n_(n), bits_(n * ((n + 63) / 64), 0) {}

void Relation::add(std::size_t a, std::size_t b) {
  PARDSM_CHECK(a < n_ && b < n_, "Relation::add out of range");
  bits_[a * words_per_row() + b / 64] |= (1ULL << (b % 64));
}

bool Relation::has(std::size_t a, std::size_t b) const {
  PARDSM_CHECK(a < n_ && b < n_, "Relation::has out of range");
  return (bits_[a * words_per_row() + b / 64] >> (b % 64)) & 1ULL;
}

void Relation::merge(const Relation& other) {
  PARDSM_CHECK(other.n_ == n_, "Relation::merge size mismatch");
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

void Relation::close() {
  // Bit-parallel Floyd–Warshall: for each pivot k, every row that reaches k
  // absorbs row k.  O(n^2 * n/64).
  const std::size_t w = words_per_row();
  for (std::size_t k = 0; k < n_; ++k) {
    const std::uint64_t* row_k = &bits_[k * w];
    for (std::size_t i = 0; i < n_; ++i) {
      if (!has(i, k)) continue;
      std::uint64_t* row_i = &bits_[i * w];
      for (std::size_t j = 0; j < w; ++j) row_i[j] |= row_k[j];
    }
  }
}

Relation Relation::closure() const {
  Relation copy = *this;
  copy.close();
  return copy;
}

bool Relation::is_acyclic() const {
  // Kahn's algorithm over the (possibly non-closed) digraph.
  std::vector<std::size_t> indegree(n_, 0);
  for (std::size_t a = 0; a < n_; ++a) {
    if (has(a, a)) return false;
    for (std::size_t b = 0; b < n_; ++b) {
      if (has(a, b)) ++indegree[b];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t v = 0; v < n_; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::size_t removed = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    ++removed;
    for (std::size_t b = 0; b < n_; ++b) {
      if (has(v, b) && --indegree[b] == 0) ready.push_back(b);
    }
  }
  return removed == n_;
}

std::size_t Relation::edge_count() const {
  std::size_t count = 0;
  for (std::uint64_t word : bits_) count += static_cast<std::size_t>(__builtin_popcountll(word));
  return count;
}

std::vector<std::pair<std::size_t, std::size_t>> Relation::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (has(a, b)) out.emplace_back(a, b);
    }
  }
  return out;
}

Relation Relation::restrict_to(const std::vector<std::int32_t>& subset) const {
  Relation out(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = 0; j < subset.size(); ++j) {
      const auto a = static_cast<std::size_t>(subset[i]);
      const auto b = static_cast<std::size_t>(subset[j]);
      if (has(a, b)) out.add(i, j);
    }
  }
  return out;
}

std::vector<std::size_t> Relation::topological_order() const {
  std::vector<std::size_t> indegree(n_, 0);
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = 0; b < n_; ++b) {
      if (has(a, b)) ++indegree[b];
    }
  }
  std::vector<std::size_t> ready, order;
  for (std::size_t v = 0; v < n_; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    // Take the smallest index for determinism.
    std::size_t best_pos = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (ready[i] < ready[best_pos]) best_pos = i;
    }
    const std::size_t v = ready[best_pos];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_pos));
    order.push_back(v);
    for (std::size_t b = 0; b < n_; ++b) {
      if (has(v, b) && --indegree[b] == 0) ready.push_back(b);
    }
  }
  PARDSM_CHECK(order.size() == n_,
               "topological_order called on cyclic relation");
  return order;
}

std::vector<std::size_t> Relation::successors(std::size_t a) const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < n_; ++b) {
    if (has(a, b)) out.push_back(b);
  }
  return out;
}

std::string Relation::to_string() const {
  // One reserved buffer, appended in place (edge lists can be O(n^2)).
  std::string out;
  out.reserve(edge_count() * 8);
  bool first = true;
  for (const auto& [a, b] : edges()) {
    if (!first) out += ' ';
    first = false;
    out += std::to_string(a);
    out += "->";
    out += std::to_string(b);
  }
  return out;
}

}  // namespace pardsm::hist
