#include "scan.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pardsm::lint {

namespace {

constexpr const char kMarker[] = "pardsm-lint:";

/// Split "a, b ,c" into trimmed names.
std::vector<std::string> split_names(std::string_view list) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : list) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    cur.push_back(c);
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Parse the pardsm-lint markers out of one comment.
void parse_marker(const Comment& cm, FileScan& fs) {
  const std::size_t m = cm.text.find(kMarker);
  if (m == std::string::npos) return;
  // The marker governs its own line when the comment trails code, or the
  // next line when the comment stands alone (NOLINTNEXTLINE-style).
  const int target = cm.standalone ? cm.line + 1 : cm.line;
  std::string_view rest = std::string_view(cm.text).substr(m + sizeof(kMarker) - 1);

  const std::size_t allow = rest.find("allow(");
  if (allow != std::string_view::npos) {
    const std::size_t close = rest.find(')', allow);
    if (close != std::string_view::npos) {
      const auto names =
          split_names(rest.substr(allow + 6, close - allow - 6));
      for (const std::string& rule : names) fs.allows[rule].insert(target);
    }
  }

  const std::size_t ow = rest.find("overwritten-by-creator");
  if (ow != std::string_view::npos) {
    FileScan::OverwriteAnno anno;
    anno.target_line = target;
    std::string_view tail =
        rest.substr(ow + sizeof("overwritten-by-creator") - 1);
    if (!tail.empty() && tail.front() == '(') {
      const std::size_t close = tail.find(')');
      if (close != std::string_view::npos) {
        anno.names = split_names(tail.substr(1, close - 1));
      }
    }
    fs.overwrites.push_back(std::move(anno));
  }
}

}  // namespace

FileScan scan_text(std::string rel, std::string_view text) {
  FileScan fs;
  fs.path = std::move(rel);
  const std::size_t slash = fs.path.find('/');
  fs.layer = slash == std::string::npos ? "" : fs.path.substr(0, slash);
  const std::size_t last = fs.path.find_last_of('/');
  fs.base = last == std::string::npos ? fs.path : fs.path.substr(last + 1);
  const std::size_t dot = fs.base.find_last_of('.');
  fs.stem = dot == std::string::npos ? fs.base : fs.base.substr(0, dot);
  fs.lx = lex(text);
  for (const Comment& cm : fs.lx.comments) parse_marker(cm, fs);
  return fs;
}

FileScan scan_file(const std::string& abs_path, std::string rel) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("pardsm_lint: cannot read " + abs_path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  return scan_text(std::move(rel), text);
}

}  // namespace pardsm::lint
