// Reliable exactly-once FIFO delivery over a lossy transport (ARQ).
//
// The consistency protocols assume reliable FIFO channels for liveness.
// ReliableTransport restores that assumption on top of a lossy/duplicating
// Network: every payload is wrapped in a DATA frame with a per-directed-
// pair sequence number; the receiver acknowledges, delivers in sequence
// exactly once, and the sender retransmits unacknowledged frames on a
// timer.  A stop-and-repeat sliding window (go-back-none: selective
// retransmit of every pending frame) keeps the implementation compact.
//
// Usage mirrors a plain Transport:
//
//   Simulator sim(...);                        // lossy channel options
//   ReliableTransport rel(sim, {});            // wraps it
//   ProcessId id = rel.add_endpoint(&proc);    // instead of sim.add_...
//   proc.attach(rel);
//
// Overhead accounting: DATA frames add 16 control bytes (seq + ack), ACK
// frames cost 24 bytes total; both are charged to the real NetworkStats,
// so loss-recovery traffic shows up in every efficiency measurement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "simnet/transport.h"

namespace pardsm {

/// Options for the ARQ layer.
///
/// Byte-accounting contract (everything lands in the run's NetworkStats —
/// there is no side ledger, so loss-recovery cost is visible in every
/// efficiency measurement):
///
///   * DATA frame: the wrapped message's own meta plus 16 control bytes
///     (sequence number + ack piggyback space); `vars_mentioned` passes
///     through unchanged, so exposure accounting (the paper's x-relevance)
///     covers ARQ traffic too.
///   * ACK frame: 24 wire bytes (8 control + 16 header), no variables.
///   * Retransmission: the full DATA frame is re-charged on every attempt
///     (on_send fires again), and a duplicated delivery is re-counted by
///     on_deliver — received <= sent stays invariant under loss only.
///
/// Scenario timelines must heal partitions and recover crashes; liveness
/// then follows because every frame is eventually acknowledged.  The
/// retransmit timer, not protocol complexity, dominates recovery latency:
/// a frame lost to a fault window is repaired at the first timer fire
/// after the window closes (bench_scenarios measures this).
///
/// Reaction when one frame exhausts `max_retransmits`.
enum class OnExhausted : std::uint8_t {
  /// Declare the directed channel dead: drop its pending frames (counted
  /// in dead_channel_drops()), silently discard later sends on it, and
  /// let the run continue degraded.  RunResult surfaces the dead pairs.
  kDeadChannel,
  /// Abort the run (the pre-dead-channel behavior; opt-in for tests that
  /// want a hard liveness guarantee).
  kThrow,
};

struct ReliableOptions {
  /// Retransmit timer: base period between retransmission rounds.
  Duration retransmit_after = millis(40);
  /// Give up on a directed channel after this many retransmissions of one
  /// frame (see on_exhausted for what "give up" means).
  std::uint32_t max_retransmits = 100;

  // Members below are appended so existing two-field aggregate inits keep
  // their meaning; the defaults preserve the fixed-period schedule and its
  // golden traffic tables bit-for-bit.

  /// Per-round interval multiplier for a destination with pending frames.
  /// <= 1.0 selects the legacy fixed-period scheduler (one shared timer
  /// per process, every destination retransmitted each round); > 1.0
  /// selects per-destination capped exponential backoff.
  double backoff_factor = 1.0;
  /// Interval cap for the backoff scheduler.  Zero means 32x
  /// retransmit_after.  Ignored by the legacy scheduler.
  Duration retransmit_max{};
  /// Jitter amplitude: each scheduled interval is scaled by a factor
  /// uniform in [1 - jitter, 1 + jitter].  Draws come from a counter-based
  /// stream keyed on (jitter_seed, sender, destination, draw index), so
  /// they are independent of timer interleaving.  Zero disables jitter
  /// (and keeps the legacy scheduler when backoff_factor <= 1).
  double jitter = 0.0;
  /// Seed of the jitter stream.
  std::uint64_t jitter_seed = 0x51C0'0C15ULL;
  /// What to do when a frame exhausts max_retransmits.
  OnExhausted on_exhausted = OnExhausted::kDeadChannel;

  /// True if the per-destination backoff scheduler is selected.
  [[nodiscard]] bool adaptive() const {
    return backoff_factor > 1.0 || jitter > 0.0;
  }
};

/// Exactly-once, per-pair-FIFO transport decorator.
class ReliableTransport final : public HostTransport {
 public:
  /// Wraps `lower` — the raw simulator, or another decorator (e.g. a
  /// BatchingTransport) in a deeper stack.  The underlying channel may
  /// drop and duplicate; FIFO ordering of it is NOT required.
  ReliableTransport(HostTransport& lower, ReliableOptions options);
  ~ReliableTransport() override;

  /// Register an application endpoint (do not register it with the layer
  /// below yourself — the decorator interposes a shim).
  ProcessId add_endpoint(Endpoint* ep) override;

  // -- Transport ------------------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  [[nodiscard]] TimePoint now() const override { return lower_.now(); }
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override;
  /// Decorators allocate from the root runtime's pools.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    return lower_.arena(owner);
  }

  /// Retransmissions performed so far (all senders).
  [[nodiscard]] std::uint64_t retransmissions() const;

  /// Directed (from, to) channels declared dead under
  /// OnExhausted::kDeadChannel, in the order they died.
  [[nodiscard]] std::vector<std::pair<ProcessId, ProcessId>> dead_channels()
      const;

  /// Frames discarded because their channel was (or became) dead: the
  /// pending frames dropped at the moment of death plus every later send
  /// attempted on a dead channel.
  [[nodiscard]] std::uint64_t dead_channel_drops() const;

 private:
  class Shim;

  HostTransport& lower_;
  ReliableOptions options_;
  bool adaptive_ = false;  ///< options_.adaptive(), resolved once
  std::vector<std::unique_ptr<Shim>> shims_;
};

}  // namespace pardsm
