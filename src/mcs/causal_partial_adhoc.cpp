#include "mcs/causal_partial_adhoc.h"

#include <algorithm>

#include "simnet/wire.h"

namespace pardsm::mcs {

/// The writer's seen-counters at send time, in VarId order, as a pooled
/// refcounted body shared by every copy of the multicast (one snapshot
/// per write instead of one per recipient).
///
/// Recycling keeps `entries` — including every inner counter vector —
/// constructed; only the live-prefix length resets.  Refilling assigns
/// into the retained storage, so a steady-state write never allocates.
struct DepSnapshotBody final : MessageBody {
  std::vector<std::pair<VarId, std::vector<std::int64_t>>> entries;
  std::size_t count = 0;  ///< live prefix of `entries`

  // `entries` is deliberately retained across recycles (that is the whole
  // point of the pool); only the [0, count) prefix is ever read, and
  // next_slot() hands each prefix slot out for assignment before use.
  // pardsm-lint: overwritten-by-creator(entries)
  void reset() { count = 0; }

  /// Grow the live prefix by one slot (reusing a retained entry when one
  /// exists) and return it for assignment.
  [[nodiscard]] std::pair<VarId, std::vector<std::int64_t>>& next_slot() {
    if (count == entries.size()) entries.emplace_back();
    return entries[count++];
  }
};

/// Hoop-routed causal message.  `deps` holds the sender's full pre-write
/// dependency snapshot; receivers only consult the entries they track,
/// and the control-byte accounting counts only those entries — exactly
/// the bytes a real implementation would put on the wire for that
/// recipient.  `var_seq` is the per-(writer, x) sequence number of this
/// write (1-based).
struct AdHocMsg final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  bool has_value = false;
  WriteId id{};
  std::int64_t var_seq = 0;
  BodyRef deps;

  // Every creation site (the write fan-out and the wire decoder) assigns
  // all scalar fields before the body escapes.
  // pardsm-lint: overwritten-by-creator(x, v, has_value, id, var_seq)
  void reset() { deps.reset(); }

  [[nodiscard]] const DepSnapshotBody* snapshot() const {
    return static_cast<const DepSnapshotBody*>(deps.get());
  }

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAdHocMsg;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    w.boolean(has_value);
    wire::put_write_id(w, id);
    w.i64(var_seq);
    // The in-memory snapshot is shared by every copy of the multicast; on
    // the wire each frame carries its own copy (real frames cannot share).
    const DepSnapshotBody* snap = snapshot();
    w.u32(static_cast<std::uint32_t>(snap ? snap->count : 0));
    if (snap) {
      for (std::size_t i = 0; i < snap->count; ++i) {
        const auto& [y, counts] = snap->entries[i];
        w.i32(y);
        w.u32(static_cast<std::uint32_t>(counts.size()));
        for (std::int64_t c : counts) w.i64(c);
      }
    }
  }
};

namespace {

const wire::BodyRegistrar adhoc_codec(
    wire::kAdHocMsg, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AdHocMsg>();
      b->x = r.i32();
      b->v = r.i64();
      b->has_value = r.boolean();
      b->id = wire::get_write_id(r);
      b->var_seq = r.i64();
      auto* deps = arena.create<DepSnapshotBody>();
      const std::size_t vars = r.u32();
      for (std::size_t i = 0; i < vars; ++i) {
        auto& [y, counts] = deps->next_slot();
        y = r.i32();
        counts.resize(r.u32());
        for (auto& c : counts) c = r.i64();
      }
      b->deps = BodyRef::adopt(deps);
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kUpdateKind("AUPD");
const KindId kNotifyKind("ANOT");

}  // namespace

std::shared_ptr<const StaticRelevance> StaticRelevance::analyze(
    const graph::Distribution& dist) {
  auto out = std::make_shared<StaticRelevance>();
  const graph::ShareGraph sg(dist);
  out->relevant = graph::all_relevant_sets(sg);
  out->tracks.resize(dist.process_count());
  out->tracks_mask.assign(dist.process_count(),
                          std::vector<std::uint8_t>(dist.var_count, 0));
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    for (ProcessId p : out->relevant[x]) {
      out->tracks[static_cast<std::size_t>(p)].push_back(
          static_cast<VarId>(x));
      out->tracks_mask[static_cast<std::size_t>(p)][x] = 1;
    }
  }
  return out;
}

CausalPartialAdHocProcess::CausalPartialAdHocProcess(
    ProcessId self, const graph::Distribution& dist,
    HistoryRecorder& recorder,
    std::shared_ptr<const StaticRelevance> analysis)
    : McsProcess(self, dist, recorder), analysis_(std::move(analysis)) {
  PARDSM_CHECK(analysis_ != nullptr, "ad-hoc protocol needs analysis");
  seen_.resize(dist.var_count);
  for (VarId y : analysis_->tracks[static_cast<std::size_t>(self)]) {
    seen_[static_cast<std::size_t>(y)].assign(dist.process_count(), 0);
  }
}

void CausalPartialAdHocProcess::on_attach() {
  msg_pool_ = &arena().pool<AdHocMsg>();
  snap_pool_ = &arena().pool<DepSnapshotBody>();
}

std::int64_t CausalPartialAdHocProcess::seen(VarId y, ProcessId k) const {
  const auto yi = static_cast<std::size_t>(y);
  if (y < 0 || yi >= seen_.size() || seen_[yi].empty()) return 0;
  return seen_[yi][static_cast<std::size_t>(k)];
}

void CausalPartialAdHocProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void CausalPartialAdHocProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();

  // Dependencies are the counters BEFORE counting this write, so `seen_`
  // is left untouched until every message is built (avoids snapshotting
  // the whole table per write).
  auto& own = seen_[static_cast<std::size_t>(x)];
  PARDSM_CHECK(!own.empty(), "ad-hoc: write on untracked variable");
  const std::int64_t var_seq = own[static_cast<std::size_t>(id())] + 1;

  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  const auto& relevant = analysis_->relevant[static_cast<std::size_t>(x)];

  // One shared snapshot per write, in ascending-VarId order (tracks[self]
  // is sorted — the same order the tracked-map iteration produced); each
  // recipient's meta still charges only the entries that recipient
  // tracks.
  auto* deps = snap_pool_->create();
  for (VarId y : analysis_->tracks[static_cast<std::size_t>(id())]) {
    auto& [slot_y, slot_counts] = deps->next_slot();
    slot_y = y;
    slot_counts = seen_[static_cast<std::size_t>(y)];  // retained capacity
  }
  const BodyRef deps_ref = BodyRef::adopt(deps);

  for (ProcessId q : relevant) {
    if (q == id()) continue;
    const auto& q_mask = analysis_->tracks_mask[static_cast<std::size_t>(q)];

    auto* body = msg_pool_->create();
    body->x = x;
    body->id = wid;
    body->var_seq = var_seq;
    body->has_value = clique_holds(q, x);
    body->v = body->has_value ? v : kBottom;
    body->deps = deps_ref;

    // Control bytes: pre-write counters restricted to variables q also
    // tracks.
    std::uint64_t dep_bytes = 0;
    for (std::size_t i = 0; i < deps->count; ++i) {
      const auto& [y, counts] = deps->entries[i];
      if (!q_mask[static_cast<std::size_t>(y)]) continue;
      dep_bytes += 8 + 8 * counts.size();
    }

    MessageMeta meta;
    meta.kind = body->has_value ? kUpdateKind : kNotifyKind;
    meta.control_bytes = 16 /*write id*/ + 8 /*var*/ + 8 /*var_seq*/ +
                         dep_bytes;
    meta.payload_bytes = body->has_value ? 8 : 0;
    meta.vars_mentioned = {x};

    // Control bytes are restricted per recipient, so each gets its own
    // single-destination plan (in the pre-seam ascending order).
    emit_to(q, BodyRef::adopt(body), std::move(meta));
  }
  own[static_cast<std::size_t>(id())] = var_seq;
  done();
}

void CausalPartialAdHocProcess::handle_message(const Message& m) {
  buffer_.push_back(m);
  mutable_stats().max_buffer_depth = std::max(
      mutable_stats().max_buffer_depth,
      static_cast<std::uint64_t>(buffer_.size()));
  try_deliver();
}

bool CausalPartialAdHocProcess::ready(const Message& m) const {
  const auto* u = m.as<AdHocMsg>();
  PARDSM_CHECK(u != nullptr, "ad-hoc: unexpected message body");

  // Per-(writer, var) FIFO: this must be the next write of the sender on x
  // that we incorporate.
  const auto xi = static_cast<std::size_t>(u->x);
  PARDSM_CHECK(xi < seen_.size() && !seen_[xi].empty(),
               "ad-hoc: received metadata for an untracked variable — "
               "routing violates Theorem 1 sets");
  if (seen_[xi][static_cast<std::size_t>(m.from)] != u->var_seq - 1) {
    return false;
  }
  // Dependency domination for every variable we track (entries of the
  // shared snapshot we do not track carry no constraint for us).
  const DepSnapshotBody* snap = u->snapshot();
  for (std::size_t i = 0; i < snap->count; ++i) {
    const auto& [y, counts] = snap->entries[i];
    const auto yi = static_cast<std::size_t>(y);
    if (yi >= seen_.size() || seen_[yi].empty()) continue;  // not tracked
    const auto& mine = seen_[yi];
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (mine[k] < counts[k]) return false;
    }
  }
  return true;
}

void CausalPartialAdHocProcess::deliver(const Message& m) {
  const auto* u = m.as<AdHocMsg>();
  seen_[static_cast<std::size_t>(u->x)][static_cast<std::size_t>(m.from)] =
      u->var_seq;
  if (u->has_value && replicates(u->x)) {
    mutable_store().put(u->x, u->v, u->id);
    ++mutable_stats().updates_applied;
  }
}

void CausalPartialAdHocProcess::try_deliver() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (!ready(*it)) {
        ++mutable_stats().updates_buffered;
        continue;
      }
      deliver(*it);
      buffer_.erase(it);
      progress = true;
      break;
    }
  }
}

}  // namespace pardsm::mcs
