// S2 — the §3.3 low-latency requirement: operation latencies per
// protocol, from the real-time intervals of recorded histories.
//
// Expected shape: wait-free protocols (causal*, pram, slow) serve reads
// and writes in zero simulated time; atomic-home pays a full round trip
// per read and write; sequencer-sc pays a round trip per write but reads
// free.  This is the price axis that complements the control-information
// axis (S1): strong criteria either spread metadata or give up wait-free
// local access.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mcs/driver.h"
#include "sharegraph/topologies.h"

namespace {

using namespace pardsm;
using namespace pardsm::mcs;
namespace bu = pardsm::benchutil;

struct Latencies {
  double mean_read_ms = 0;
  double mean_write_ms = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

Latencies measure(ProtocolKind kind, Duration lo, Duration hi) {
  const auto dist = graph::topo::random_replication(6, 5, 3, 5);
  WorkloadSpec spec;
  spec.ops_per_process = 10;
  spec.read_fraction = 0.5;
  spec.seed = 9;
  const auto scripts = make_random_scripts(dist, spec);
  RunOptions options;
  options.latency = std::make_unique<UniformLatency>(lo, hi);
  const auto run = run_workload(kind, dist, scripts, std::move(options));

  Latencies out;
  double read_total = 0, write_total = 0;
  for (const auto& op : run.history.ops()) {
    const double ms =
        static_cast<double>((op.responded - op.invoked).us) / 1000.0;
    if (op.is_read()) {
      read_total += ms;
      ++out.reads;
    } else {
      write_total += ms;
      ++out.writes;
    }
  }
  if (out.reads) out.mean_read_ms = read_total / static_cast<double>(out.reads);
  if (out.writes) {
    out.mean_write_ms = write_total / static_cast<double>(out.writes);
  }
  return out;
}

void print_table(bu::Harness& h) {
  bu::banner("S2: operation latency per protocol (network: uniform 2-10ms)");
  bu::row({"protocol", "read-ms", "write-ms", "wait-free?"});
  for (auto kind : all_protocols()) {
    const bu::WallTimer timer;
    const auto lat = measure(kind, millis(2), millis(10));
    const std::uint64_t wall_ns = timer.ns();
    const bool wait_free = kind != ProtocolKind::kAtomicHome &&
                           kind != ProtocolKind::kSequencerSC &&
                           kind != ProtocolKind::kCachePartial &&
                           kind != ProtocolKind::kProcessorPartial;
    bu::row({to_string(kind), bu::num(lat.mean_read_ms, 2),
             bu::num(lat.mean_write_ms, 2), wait_free ? "yes" : "no"});
    h.record({.label = "uniform-2-10ms",
              .protocol = to_string(kind),
              .distribution = "random-r3-6p5v",
              .ops = lat.reads + lat.writes,
              .wall_ns = wall_ns,
              .extra = {{"mean_read_ms", lat.mean_read_ms},
                        {"mean_write_ms", lat.mean_write_ms},
                        {"wait_free", wait_free ? 1.0 : 0.0}}});
  }
  std::cout << "(expected: 0.00 for wait-free protocols; ~1 RTT for "
               "atomic reads/writes and sequencer writes)\n";

  bu::banner("S2b: atomic-home read latency vs network latency");
  bu::row({"net lo-hi (ms)", "read-ms"});
  for (auto [lo, hi] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 10}, {10, 30}, {30, 80}}) {
    const bu::WallTimer timer;
    const auto lat = measure(ProtocolKind::kAtomicHome, millis(lo),
                             millis(hi));
    const std::uint64_t wall_ns = timer.ns();
    bu::row({std::to_string(lo) + "-" + std::to_string(hi),
             bu::num(lat.mean_read_ms, 2)});
    h.record({.label = "atomic-home-net-" + std::to_string(lo) + "-" +
                       std::to_string(hi) + "ms",
              .protocol = to_string(ProtocolKind::kAtomicHome),
              .distribution = "random-r3-6p5v",
              .ops = lat.reads + lat.writes,
              .wall_ns = wall_ns,
              .extra = {{"mean_read_ms", lat.mean_read_ms},
                        {"mean_write_ms", lat.mean_write_ms}}});
  }
  std::cout << "(expected: read latency tracks the RTT — no locality)\n";
}

void BM_WaitFreeWriteCpu(benchmark::State& state) {
  // CPU cost of issuing one wait-free write (no simulation time).
  const auto dist = graph::topo::complete(4, 2);
  HistoryRecorder recorder(4, 2);
  auto procs = make_processes(ProtocolKind::kPramPartial, dist, recorder);
  Simulator sim;
  for (auto& p : procs) {
    sim.add_endpoint(p.get());
    p->attach(sim);
  }
  Value v = 1;
  for (auto _ : state) {
    procs[0]->write(0, v++, [] {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WaitFreeWriteCpu);

void BM_LatencyRun(benchmark::State& state, ProtocolKind kind) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(kind, millis(2), millis(10)));
  }
}
BENCHMARK_CAPTURE(BM_LatencyRun, pram, ProtocolKind::kPramPartial);
BENCHMARK_CAPTURE(BM_LatencyRun, atomic, ProtocolKind::kAtomicHome);

}  // namespace

int main(int argc, char** argv) {
  bu::Harness h(&argc, argv, "latency");
  print_table(h);
  if (!h.quick()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return h.write_json();
}
