// The one engine every system run goes through.
//
// An EngineConfig names a complete experiment — protocol, distribution,
// the load (per-process scripts, or a generated streaming workload), the
// transport stack (raw / ARQ / batching, in either stacking order), an
// optional fault timeline and the runtime to execute on — and run()
// executes it.  run_workload, run_scenario and run_workload_threaded
// (driver.h) are thin wrappers that fill in a config; benches and tests
// that sweep transport parameters use run() directly.
//
// Transport stack assembled by run(), bottom-up:
//
//   Simulator | ThreadRuntime |
//   ParallelSimulator | SocketTransport  (root HostTransport)
//     └─ BatchingTransport               (placement kBelowReliable)
//         └─ ReliableTransport           (when the run needs ARQ)
//             └─ BatchingTransport       (placement kAboveReliable, default)
//                 └─ McsProcess endpoints
//
// Layers are only constructed when configured: a lossless, unbatched run
// wires processes straight to the root runtime, exactly as before.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "mcs/factory.h"
#include "simnet/batching.h"
#include "simnet/latency_histogram.h"
#include "simnet/reliable.h"
#include "simnet/scenario.h"
#include "simnet/simulator.h"
#include "simnet/socket_transport.h"
#include "workload/generator.h"

namespace pardsm::mcs {

/// One scripted operation.
struct ScriptOp {
  enum class Kind : std::uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  VarId var = kNoVar;
  Value value = kBottom;  ///< written value (writes only)
  /// Delay before issuing this operation (think time).
  Duration delay{};

  static ScriptOp read(VarId x, Duration delay = {}) {
    return {Kind::kRead, x, kBottom, delay};
  }
  static ScriptOp write(VarId x, Value v, Duration delay = {}) {
    return {Kind::kWrite, x, v, delay};
  }
};

/// A per-process operation script.
using Script = std::vector<ScriptOp>;

/// Drives one McsProcess through its script (simulator runtime).
///
/// Crash-aware: the application is co-located with its MCS process, so
/// while the process is down the client neither issues operations (an
/// issue attempt stalls) nor loses its place in the script.  The scenario
/// driver calls resume() from the recovery hook; an operation that was
/// in flight at crash time simply completes late — its response is
/// retransmitted by the ARQ layer — and the script continues from there.
class ScriptedClient {
 public:
  ScriptedClient(McsProcess& process, Simulator& sim, Script script);

  /// Schedule the first operation at `start`.
  void start(TimePoint start);

  /// Re-issue the stalled operation after the process recovered (no-op if
  /// the client was not stalled).
  void resume(TimePoint at);

  [[nodiscard]] bool done() const { return next_ >= script_.size(); }
  [[nodiscard]] bool stalled() const { return stalled_; }
  [[nodiscard]] const std::vector<Value>& read_results() const {
    return reads_;
  }

 private:
  void issue();

  McsProcess& process_;
  Simulator& sim_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool stalled_ = false;
};

/// ScriptedClient's twin for generated workloads (EngineConfig::workload,
/// simulator runtime): streams ops out of a workload::Generator instead
/// of replaying a stored Script, so a million-op run holds no per-op
/// state — the client is a fixed-size cursor (indices, a latency
/// histogram, a digest of read results) no matter how long the stream is.
///
/// Closed loop (arrival_rate == 0): op k+1 is issued when op k completes,
/// latency measured from the issue instant.  Open loop (positive rate):
/// op k *arrives* at start + k/rate on the simulated clock regardless of
/// system progress; at most one op is outstanding per process, the rest
/// queue as a backlog counter, and latency is measured from the scheduled
/// arrival, so head-of-line queueing behind a slow (or crashed — the
/// stall/resume handshake matches ScriptedClient) system is charged to
/// the op rather than omitted.
class WorkloadClient {
 public:
  WorkloadClient(McsProcess& process, Simulator& sim,
                 const workload::Generator& gen);

  /// Schedule the first arrival (open loop) or first issue (closed loop).
  void start(TimePoint start);

  /// Re-enter the issue loop after the process recovered (no-op if the
  /// client was not stalled).
  void resume(TimePoint at);

  [[nodiscard]] bool done() const {
    return completed_ == gen_.ops_per_process();
  }
  [[nodiscard]] bool stalled() const { return stalled_; }
  /// Ops handed to the protocol / completed so far.  At quiescence
  /// issued - completed is 0 or, with a dead channel, the censored op.
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Order-sensitive digest of every read result — O(1) memory stand-in
  /// for ScriptedClient's stored read vector.
  [[nodiscard]] std::uint64_t reads_digest() const { return reads_digest_; }
  [[nodiscard]] const LatencyHistogram& latency() const { return latency_; }

 private:
  void arrive();
  void pump();
  void complete(TimePoint t0);

  McsProcess& process_;
  Simulator& sim_;
  const workload::Generator& gen_;
  TimePoint start_{};
  std::uint64_t arrivals_ = 0;  ///< ops arrived (== total in closed loop)
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t reads_digest_ = 0;
  bool outstanding_ = false;
  bool stalled_ = false;
  LatencyHistogram latency_;
};

/// Final (value, provenance) copy of one replicated variable.
struct ReplicaEntry {
  VarId x = kNoVar;
  Value value = kBottom;
  WriteId source{};

  friend bool operator==(const ReplicaEntry&, const ReplicaEntry&) = default;
};

/// Result of a full system run.
struct RunResult {
  hist::History history;
  ProcessTraffic total_traffic;
  std::vector<ProcessTraffic> per_process_traffic;
  /// observed_relevant[x] = processes that received metadata about x.
  std::vector<std::set<ProcessId>> observed_relevant;
  std::vector<ProtocolStats> protocol_stats;
  /// Per-process replica contents at quiescence (sorted by VarId).
  std::vector<std::vector<ReplicaEntry>> final_replicas;
  TimePoint finished_at{};
  std::uint64_t events = 0;
  /// Channel-state footprint at quiescence (simulator runs only): directed
  /// pairs that carried at least one surviving message, and the bytes the
  /// network's sparse per-pair tables hold — the observable form of the
  /// O(active pairs) memory model (docs/SCALING.md).
  std::size_t active_channel_pairs = 0;
  std::size_t channel_state_bytes = 0;
  /// Generated-workload runs only (EngineConfig::workload): the per-op
  /// latency ledger, merged over every client (and thus every shard on
  /// the parallel root).  ops_censored = ops that arrived per the
  /// generator's schedule but never completed — dead channel or
  /// never-recovered crash; they sit in the histogram's censored mass,
  /// above every bucket, never as ~0 latencies (docs/WORKLOADS.md).
  LatencyHistogram op_latency;
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_censored = 0;
};

/// run() / run_scenario result: the ordinary run outcome plus the fault
/// and transport-stack ledgers.
struct ScenarioRunResult : RunResult {
  /// True when the run was routed through ReliableTransport (any faulty
  /// scenario); false for fault-free timelines on the raw simulator.
  bool used_reliable_transport = false;
  /// ARQ retransmissions across all senders.
  std::uint64_t retransmissions = 0;
  /// Channel drops by cause (loss, partition, downtime, in-flight).
  DropCounters drops;
  /// Crash/re-sync ledger summed over all processes.
  std::uint64_t crashes = 0;
  std::uint64_t resync_messages = 0;  ///< requests sent + responses served
  std::uint64_t resync_bytes = 0;
  std::uint64_t resync_values_applied = 0;
  /// Slowest recover()→re-sync-complete interval of the run.
  Duration max_recovery_latency{};
  /// Batching-layer ledger (all zero without a batching layer).
  BatchingStats batching;
  /// Directed pairs the ARQ layer declared dead after exhausting
  /// max_retransmits (OnExhausted::kDeadChannel).  Empty on every default
  /// configuration — the engine default effectively never gives up.
  std::vector<std::pair<ProcessId, ProcessId>> dead_channels;
  /// Clients that could not finish their script because a channel died.
  /// Non-zero only when dead_channels is non-empty; with live channels an
  /// unfinished client is still a hard error.
  std::size_t unfinished_clients = 0;
  /// Socket-layer wire ledger (all zero off the sockets runtime): frames
  /// and bytes actually written/read, heartbeats, dials, reconnects and
  /// chaos injections.
  SocketCounters socket_counters;
};

/// The engine's ARQ default: effectively never gives up — scenario
/// liveness comes from healing timelines, not retransmit caps.  Shared by
/// EngineConfig and driver.h's RunOptions so the wrappers and direct
/// engine runs cannot drift apart.
inline constexpr ReliableOptions kEngineReliableDefaults{millis(40),
                                                         1'000'000};

/// When the run must be routed through the ARQ layer.
enum class ReliabilityMode : std::uint8_t {
  /// ReliableTransport iff the scenario is faulty or the channel can drop
  /// or duplicate — what run_scenario always did.
  kAuto,
  /// Raw channel even when lossy (fault-injection tests exercise protocol
  /// *safety* on an unrepaired channel) — what run_workload always did.
  kNever,
  /// Always wrap, pricing ARQ framing into a lossless run.
  kAlways,
};

/// Where the batching layer sits relative to the ARQ layer (only relevant
/// when both are configured).
enum class BatchPlacement : std::uint8_t {
  /// app → batching → ARQ: whole frames are acknowledged/retransmitted as
  /// one DATA frame — fewer acks.  The default.
  kAboveReliable,
  /// app → ARQ → batching: DATA and ACK frames coalesce on the wire; keep
  /// window well below the retransmit timer.
  kBelowReliable,
};

/// Which runtime executes the run.
enum class EngineRuntime : std::uint8_t {
  kSimulator,    ///< deterministic discrete-event simulator
  kThreads,      ///< one OS thread per process (non-deterministic)
  kParallelSim,  ///< sharded deterministic simulator (worker threads)
  /// Real TCP sockets over loopback, all endpoints in this OS process
  /// (SocketTransport root; pardsm_node drives the multi-process shape).
  /// Fault timelines replay on the wall clock — 1 simulated µs = 1 µs —
  /// with loss/duplication windows mapped onto the socket layer's
  /// deterministic chaos streams.  Message *timing* is as
  /// non-deterministic as kThreads; fault draws are reproducible.
  kSockets,
};

/// Parallel-simulator knobs (EngineRuntime::kParallelSim).  The shard
/// assignment itself is derived from the share graph (cells of
/// near-disjoint topologies map onto their own shards; connected
/// topologies round-robin by process id) — see graph::shard_assignment.
struct ParallelOptions {
  /// Worker thread count == shard count.  Results are independent of this
  /// value: the canonical event order and counter-based RNG streams make
  /// a run a pure function of (config, seed), not of the thread count.
  unsigned num_threads = 4;
  /// Conservative barrier window; zero derives the largest safe value
  /// from the latency model's lower bound.
  Duration quantum{};
};

/// Everything one system run needs.  Pointer members are borrowed and
/// must outlive run().
struct EngineConfig {
  ProtocolKind protocol = ProtocolKind::kPramPartial;
  const graph::Distribution* distribution = nullptr;  ///< required
  /// The load: exactly one of `scripts` (replayed verbatim) or `workload`
  /// (streamed from a generator, never materialized) must be set.
  const std::vector<Script>* scripts = nullptr;
  const workload::Spec* workload = nullptr;
  /// Record every op into RunResult::history (the consistency checkers
  /// need it).  Turn off for million-op workload runs: the recorder then
  /// only counts, memory stays O(1) in the op count, and
  /// RunResult::history comes back empty.
  bool record_history = true;
  /// Optional fault timeline (null = lossless run, no scenario events).
  const Scenario* scenario = nullptr;
  EngineRuntime runtime = EngineRuntime::kSimulator;

  // -- simulator ------------------------------------------------------------
  std::uint64_t sim_seed = 1;
  ChannelOptions channel;
  std::unique_ptr<LatencyModel> latency;  ///< null = constant 1ms

  // -- parallel simulator ---------------------------------------------------
  ParallelOptions parallel;

  // -- transport stack ------------------------------------------------------
  ReliabilityMode reliability = ReliabilityMode::kAuto;
  /// ARQ configuration (see kEngineReliableDefaults).
  ReliableOptions reliable = kEngineReliableDefaults;
  /// Batching window 0 = no batching layer at all (unless forced below).
  BatchingOptions batching;
  BatchPlacement batch_placement = BatchPlacement::kAboveReliable;
  /// Construct the batching layer even at window 0 (the pass-through
  /// regression in tests/test_transport_conformance.cpp pins that this is
  /// bit-identical to no layer).
  bool force_batching_layer = false;
  /// Multicast expansion injected into every process (null = the default
  /// point-to-point fanout).
  MulticastService* multicast = nullptr;

  // -- thread runtime -------------------------------------------------------
  /// Bound on the wait for quiescence (kThreads and kSockets).
  std::chrono::milliseconds quiesce_timeout{10000};

  // -- sockets runtime ------------------------------------------------------
  /// Socket-root knobs (heartbeats, backoff, chaos injection).  The engine
  /// always runs the all-local loopback shape: total_processes and
  /// local_ids are derived from the distribution and must be left alone.
  SocketOptions sockets;
};

/// Execute the configured run.  Deterministic per config on the simulator
/// runtimes; timing is non-deterministic by design on kThreads and
/// kSockets (the sockets root still replays fault timelines and runs the
/// full transport stack — chaos and backoff draws are seeded, only the
/// wall-clock interleaving varies; see docs/DEPLOYMENT.md).
[[nodiscard]] ScenarioRunResult run(EngineConfig config);

}  // namespace pardsm::mcs
