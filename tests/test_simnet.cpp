// simnet substrate unit tests: RNG, event queue, latency models, channel
// semantics, stats, trace, simulator determinism.

#include <gtest/gtest.h>

#include <set>

#include "simnet/event_queue.h"
#include "simnet/latency.h"
#include "simnet/network.h"
#include "simnet/rng.h"
#include "simnet/simulator.h"
#include "simnet/trace.h"

namespace pardsm {
namespace {

// ------------------------------------------------------------------- Rng
TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c;
  }
  Rng d(8);
  bool all_equal = true;
  Rng e(7);
  for (int i = 0; i < 10; ++i) {
    if (d() != e()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(11);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1(), c2());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

// ------------------------------------------------------------ EventQueue
TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(TimePoint{20}, [&] { fired.push_back(2); });
  q.schedule(TimePoint{10}, [&] { fired.push_back(1); });
  q.schedule(TimePoint{20}, [&] { fired.push_back(3); });  // same time: FIFO
  while (!q.empty()) q.pop().fire();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.schedule(TimePoint{5}, [] {});
  EXPECT_EQ(q.next_time(), TimePoint{5});
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------- Latency
TEST(Latency, ConstantAlwaysSame) {
  ConstantLatency lat(millis(3));
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lat.sample(0, 1, rng), millis(3));
  }
}

TEST(Latency, UniformWithinBounds) {
  UniformLatency lat(millis(2), millis(9));
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto d = lat.sample(0, 1, rng);
    EXPECT_GE(d, millis(2));
    EXPECT_LE(d, millis(9));
  }
}

TEST(Latency, ExponentialTailBaseAndCap) {
  ExponentialTailLatency lat(millis(1), millis(2), millis(10));
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto d = lat.sample(0, 1, rng);
    EXPECT_GE(d, millis(1));
    EXPECT_LE(d, millis(11));
  }
}

TEST(Latency, MatrixPerPair) {
  MatrixLatency lat({{millis(0), millis(5)}, {millis(7), millis(0)}});
  Rng rng(1);
  EXPECT_EQ(lat.sample(0, 1, rng), millis(5));
  EXPECT_EQ(lat.sample(1, 0, rng), millis(7));
}

// ---------------------------------------------------------------- Network
TEST(Network, FifoClampsDeliveryOrder) {
  ChannelOptions ch;
  ch.fifo = true;
  Network net(2, ch, std::make_unique<UniformLatency>(millis(1), millis(50)),
              Rng(5));
  TimePoint last{-1};
  for (int i = 0; i < 50; ++i) {
    const auto deliveries = net.plan_delivery(0, 1, TimePoint{i});
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_GT(deliveries[0], last);
    last = deliveries[0];
  }
}

TEST(Network, NonFifoMayReorder) {
  ChannelOptions ch;
  ch.fifo = false;
  Network net(2, ch, std::make_unique<UniformLatency>(millis(1), millis(50)),
              Rng(5));
  bool reordered = false;
  TimePoint last{-1};
  for (int i = 0; i < 100; ++i) {
    const auto deliveries = net.plan_delivery(0, 1, TimePoint{i});
    if (deliveries[0] <= last) reordered = true;
    last = deliveries[0];
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, DropProbabilityDropsSome) {
  ChannelOptions ch;
  ch.drop_probability = 0.5;
  Network net(2, ch, nullptr, Rng(6));
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    delivered += static_cast<int>(net.plan_delivery(0, 1, TimePoint{i}).size());
  }
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_GT(net.dropped_count(), 0u);
}

TEST(Network, DuplicateProbabilityDuplicatesSome) {
  ChannelOptions ch;
  ch.duplicate_probability = 0.5;
  Network net(2, ch, nullptr, Rng(7));
  int copies = 0;
  for (int i = 0; i < 100; ++i) {
    copies += static_cast<int>(net.plan_delivery(0, 1, TimePoint{i}).size());
  }
  EXPECT_GT(copies, 100);
}

TEST(Network, SeverAndHeal) {
  Network net(2, {}, nullptr, Rng(8));
  net.sever(0, 1);
  EXPECT_TRUE(net.plan_delivery(0, 1, TimePoint{0}).empty());
  EXPECT_FALSE(net.plan_delivery(1, 0, TimePoint{0}).empty());  // one way
  net.heal(0, 1);
  EXPECT_FALSE(net.plan_delivery(0, 1, TimePoint{1}).empty());
}

// A third delivery would write past the fixed two-slot array — the check
// must fire, not corrupt the stack (a silent out-of-bounds write is
// exactly what a future second duplicate draw would have produced).
TEST(Network, DeliveryPlanOverflowIsLoud) {
  DeliveryPlan plan;
  plan.push(TimePoint{1});
  plan.push(TimePoint{2});
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_THROW(plan.push(TimePoint{3}), std::logic_error);
}

// Channel state is O(active pairs): only pairs that carried a surviving
// message (FIFO clamp) or were explicitly configured have entries.
TEST(Network, ChannelStateTracksActivePairsOnly) {
  Network net(1000, {}, nullptr, Rng(9));
  EXPECT_EQ(net.fifo_pairs(), 0u);
  EXPECT_EQ(net.override_entries(), 0u);

  (void)net.plan_delivery(0, 1, TimePoint{0});
  (void)net.plan_delivery(0, 1, TimePoint{1});  // same pair: no new state
  (void)net.plan_delivery(7, 3, TimePoint{2});
  EXPECT_EQ(net.fifo_pairs(), 2u);

  net.set_loss(4, 5, 0.5);
  net.sever(8, 9);
  EXPECT_EQ(net.override_entries(), 2u);
  // Untouched pairs answer with the defaults.
  EXPECT_EQ(net.loss(1, 2), 0.0);
  EXPECT_EQ(net.duplicate(1, 2), 0.0);
  EXPECT_FALSE(net.severed(1, 2));
  EXPECT_EQ(net.loss(4, 5), 0.5);
  EXPECT_TRUE(net.severed(8, 9));
}

// set_*_all must answer for every pair, including previously overridden
// ones — exactly what overwriting the dense table did.
TEST(Network, SetAllReplacesPairOverrides) {
  ChannelOptions ch;
  ch.drop_probability = 0.05;
  Network net(4, ch, nullptr, Rng(10));
  EXPECT_EQ(net.loss(2, 3), 0.05);  // ChannelOptions seeds the default
  net.set_loss(0, 1, 0.9);
  net.set_duplicate(0, 1, 0.8);
  net.set_loss_all(0.2);
  net.set_duplicate_all(0.1);
  EXPECT_EQ(net.loss(0, 1), 0.2);
  EXPECT_EQ(net.loss(3, 2), 0.2);
  EXPECT_EQ(net.duplicate(0, 1), 0.1);
  EXPECT_EQ(net.duplicate(1, 0), 0.1);
  // Heal on a never-severed pair stays a no-op (no underflow entry).
  net.heal(1, 2);
  EXPECT_FALSE(net.severed(1, 2));
  net.sever(1, 2);
  EXPECT_TRUE(net.severed(1, 2));
}

// -------------------------------------------------------------- Simulator
namespace {
struct Echo final : Endpoint {
  std::vector<std::uint64_t> received;
  void on_message(const Message& m) override { received.push_back(m.id); }
};
struct Ping final : MessageBody {};
}  // namespace

TEST(Simulator, DeliversAndCounts) {
  Simulator sim;
  Echo a, b;
  const ProcessId pa = sim.add_endpoint(&a);
  const ProcessId pb = sim.add_endpoint(&b);
  sim.schedule_at(kTimeZero, [&] {
    MessageMeta meta;
    meta.kind = "PING";
    meta.control_bytes = 4;
    meta.vars_mentioned = {0};
    sim.send(pa, pb, make_body<Ping>(), meta);
  });
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.stats().traffic(pa).msgs_sent, 1u);
  EXPECT_EQ(sim.stats().traffic(pb).msgs_received, 1u);
  EXPECT_EQ(sim.stats().exposure(pb, 0), 1u);
  EXPECT_TRUE(sim.stats().processes_exposed_to(0).count(pb));
}

TEST(Simulator, TimersFireInOrder) {
  struct T final : Endpoint {
    std::vector<TimerTag> tags;
    void on_message(const Message&) override {}
    void on_timer(TimerTag t) override { tags.push_back(t); }
  };
  Simulator sim;
  T t;
  const ProcessId p = sim.add_endpoint(&t);
  sim.set_timer(p, millis(5), 2);
  sim.set_timer(p, millis(1), 1);
  sim.run();
  EXPECT_EQ(t.tags, (std::vector<TimerTag>{1, 2}));
  EXPECT_EQ(sim.now(), kTimeZero + millis(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  Echo a;
  const ProcessId p = sim.add_endpoint(&a);
  sim.set_timer(p, millis(10), 1);
  EXPECT_FALSE(sim.run_until(kTimeZero + millis(5)));
  EXPECT_TRUE(sim.run_until(kTimeZero + millis(20)));
}

TEST(Simulator, TraceRecordsWhenEnabled) {
  Simulator sim;
  Echo a, b;
  const ProcessId pa = sim.add_endpoint(&a);
  const ProcessId pb = sim.add_endpoint(&b);
  sim.trace().set_enabled(true);
  sim.schedule_at(kTimeZero, [&] {
    sim.send(pa, pb, make_body<Ping>(), MessageMeta{"PING", 0, 0, {}});
  });
  sim.run();
  const auto entries = sim.trace().entries();
  ASSERT_EQ(entries.size(), 2u);  // SEND + DELV
  EXPECT_EQ(entries[0].type, TraceEntry::Type::kSend);
  EXPECT_EQ(entries[1].type, TraceEntry::Type::kDeliver);
  std::ostringstream os;
  sim.trace().dump(os);
  EXPECT_NE(os.str().find("SEND"), std::string::npos);
}

TEST(Simulator, MaxEventsGuardTrips) {
  SimOptions options;
  options.max_events = 10;
  Simulator sim(std::move(options));
  struct Loop final : Endpoint {
    Simulator* sim = nullptr;
    ProcessId self = 0;
    void on_message(const Message&) override {}
    void on_timer(TimerTag) override { sim->set_timer(self, millis(1), 0); }
  };
  Loop loop;
  loop.sim = &sim;
  loop.self = sim.add_endpoint(&loop);
  sim.set_timer(loop.self, millis(1), 0);
  EXPECT_THROW(sim.run(), std::logic_error);
}

// ------------------------------------------------------------ NetworkStats
namespace {
Message mention(ProcessId from, ProcessId to,
                std::initializer_list<VarId> vars) {
  Message m;
  m.from = from;
  m.to = to;
  m.meta.kind = "X";
  m.meta.control_bytes = 8;
  m.meta.vars_mentioned = vars;
  return m;
}
}  // namespace

// With a var hint, rows are pre-sized at resize() time: the exposure
// matrix's shape and content are a pure function of the delivered set —
// independent of receipt order (ragged lazily-grown rows were not).
TEST(NetworkStats, ExposureIndependentOfReceiptOrder) {
  const std::size_t n = 3, m = 6;
  const std::vector<Message> msgs = {
      mention(0, 1, {5}),  // high VarId first on p1
      mention(0, 1, {0}),
      mention(1, 2, {2}),
      mention(0, 2, {4, 2}),
      mention(2, 0, {1}),
  };
  NetworkStats forward;
  forward.set_var_hint(m);
  forward.resize(n);
  NetworkStats backward;
  backward.set_var_hint(m);
  backward.resize(n);
  for (const Message& msg : msgs) forward.on_deliver(msg);
  for (auto it = msgs.rbegin(); it != msgs.rend(); ++it) {
    backward.on_deliver(*it);
  }
  EXPECT_EQ(forward.exposure_sets(m), backward.exposure_sets(m));
  for (std::size_t p = 0; p < n; ++p) {
    const auto pid = static_cast<ProcessId>(p);
    EXPECT_EQ(forward.variables_seen_by(pid), backward.variables_seen_by(pid));
    for (std::size_t x = 0; x < m; ++x) {
      EXPECT_EQ(forward.exposure(pid, static_cast<VarId>(x)),
                backward.exposure(pid, static_cast<VarId>(x)));
    }
  }
}

// Without a hint the lazy fallback still grows rows past their size — and
// a late hint extends existing rows in place.
TEST(NetworkStats, LazyFallbackAndLateHint) {
  NetworkStats stats;
  stats.resize(2);
  stats.on_deliver(mention(0, 1, {9}));  // far past the (empty) row
  EXPECT_EQ(stats.exposure(1, 9), 1u);
  EXPECT_EQ(stats.exposure(1, 3), 0u);
  stats.set_var_hint(16);
  stats.on_deliver(mention(0, 1, {15}));
  EXPECT_EQ(stats.exposure(1, 15), 1u);
  EXPECT_EQ(stats.exposure(1, 9), 1u);
}

}  // namespace
}  // namespace pardsm
