// bench_all — run every bench binary and merge their JSON results.
//
//   $ ./bench/bench_all [--quick] [--out BENCH_ALL.json] [--baseline OLD.json]
//
// Each bench_* binary understands --quick (skip google-benchmark timings,
// print the paper artifact and record counters only) and
// --json=<path> (where to write its BENCH_<name>.json).  bench_all invokes
// the siblings living next to its own binary, then splices the per-bench
// JSON files into one results document, so the perf trajectory of the
// repo is a single machine-readable artifact per run.
//
// --baseline compares the freshly produced document against an earlier
// BENCH_ALL.json: rows are matched on (bench, label, protocol,
// distribution) and the wall_ns speedup is printed per row plus a
// geometric-mean summary.  The parser is deliberately minimal — it reads
// the line-oriented format this harness itself emits, not arbitrary JSON.

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

namespace {

constexpr std::array kBenches = {
    "bench_fig1_sharegraph",    "bench_fig2_hoops",
    "bench_fig3_depchain",      "bench_fig456_checkers",
    "bench_fig789_bellman_ford", "bench_theorem1_relevance",
    "bench_theorem2_pram",      "bench_control_overhead",
    "bench_latency",            "bench_checkers_scaling",
    "bench_oblivious_apps",     "bench_open_question",
    "bench_scenarios",
};

std::string self_dir() {
  std::array<char, 4096> buf{};
  const auto n = ::readlink("/proc/self/exe", buf.data(), buf.size() - 1);
  std::string path = n > 0 ? std::string(buf.data(), static_cast<std::size_t>(n)) : ".";
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Value of a `"key": "string"` field on `line`, or "" if absent.
std::string string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  const auto begin = pos + needle.size();
  const auto end = line.find('"', begin);
  return end == std::string::npos ? std::string{} : line.substr(begin, end - begin);
}

/// Value of a `"key": 123` numeric field on `line`, or -1 if absent.
double number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(line.c_str() + pos + needle.size());
}

/// wall_ns per (bench, label, protocol, distribution) row of a BENCH_ALL
/// document (rows without a wall_ns measurement are skipped).
std::map<std::string, double> wall_ns_by_row(const std::string& doc) {
  std::map<std::string, double> out;
  std::istringstream in(doc);
  std::string line;
  std::string bench;
  while (std::getline(in, line)) {
    const std::string b = string_field(line, "bench");
    if (!b.empty()) bench = b;
    const std::string label = string_field(line, "label");
    if (label.empty()) continue;
    const double wall_ns = number_field(line, "wall_ns");
    if (wall_ns <= 0) continue;
    const std::string key = bench + " | " + label + " | " +
                            string_field(line, "protocol") + " | " +
                            string_field(line, "distribution");
    out[key] = wall_ns;
  }
  return out;
}

void diff_against_baseline(const std::string& baseline_doc,
                           const std::string& current_doc) {
  const auto before = wall_ns_by_row(baseline_doc);
  const auto after = wall_ns_by_row(current_doc);
  std::printf("\n%-72s %12s %12s %8s\n", "row (bench | label | protocol | dist)",
              "old ns", "new ns", "speedup");
  double log_sum = 0;
  std::size_t matched = 0;
  for (const auto& [key, new_ns] : after) {
    const auto it = before.find(key);
    if (it == before.end()) continue;
    const double speedup = it->second / new_ns;
    std::printf("%-72s %12.0f %12.0f %7.2fx\n", key.c_str(), it->second,
                new_ns, speedup);
    log_sum += std::log(speedup);
    ++matched;
  }
  if (matched == 0) {
    std::cout << "[bench_all] baseline: no matching wall_ns rows\n";
    return;
  }
  std::printf("[bench_all] baseline: %zu rows matched, geomean speedup %.2fx\n",
              matched, std::exp(log_sum / static_cast<double>(matched)));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out = "BENCH_ALL.json";
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(11);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::cerr << "usage: bench_all [--quick] [--out BENCH_ALL.json] "
                   "[--baseline OLD.json]\n";
      return 2;
    }
  }

  const std::string dir = self_dir();
  std::vector<std::string> merged;
  int failures = 0;

  for (const char* name : kBenches) {
    const std::string json = "BENCH_" + std::string(name).substr(6) + ".json";
    std::string cmd = dir + "/" + name + " --json=" + json;
    if (quick) cmd += " --quick";
    std::cout << "[bench_all] " << name << (quick ? " (quick)" : "") << "\n";
    std::cout.flush();
    const int status = std::system(cmd.c_str());
    const std::string body = read_file(json);
    if (status != 0 || body.empty()) {
      std::cerr << "[bench_all] FAILED: " << name;
      if (WIFSIGNALED(status)) {
        std::cerr << " (signal " << WTERMSIG(status) << ")";
      } else {
        std::cerr << " (exit " << WEXITSTATUS(status) << ")";
      }
      std::cerr << '\n';
      ++failures;
      continue;
    }
    merged.push_back(body);
  }

  std::ostringstream doc;
  doc << "{\n  \"schema\": \"pardsm-bench-v2\",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"benches\": [\n";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    doc << merged[i];
    if (i + 1 < merged.size()) doc << ",";
    doc << "\n";
  }
  doc << "  ]\n}\n";

  std::ofstream os(out);
  os << doc.str();
  os.close();

  std::cout << "[bench_all] wrote " << out << " (" << merged.size() << "/"
            << kBenches.size() << " benches)\n";

  if (!baseline.empty()) {
    const std::string baseline_doc = read_file(baseline);
    if (baseline_doc.empty()) {
      std::cerr << "[bench_all] cannot read baseline " << baseline << '\n';
      return 1;
    }
    diff_against_baseline(baseline_doc, doc.str());
  }
  return failures == 0 ? 0 : 1;
}
