#include "mcs/causal_partial_adhoc.h"

#include <algorithm>

#include "simnet/wire.h"

namespace pardsm::mcs {

namespace {

/// The writer's seen-counters at send time, in VarId order.
using DepSnapshot = std::vector<std::pair<VarId, std::vector<std::int64_t>>>;

/// Hoop-routed causal message.  `deps` is the sender's full pre-write
/// dependency snapshot, shared by every copy of the multicast (one copy
/// per write instead of one per recipient); receivers only consult the
/// entries they track, and the control-byte accounting counts only those
/// entries — exactly the bytes a real implementation would put on the
/// wire for that recipient.  `var_seq` is the per-(writer, x) sequence
/// number of this write (1-based).
struct AdHocMsg final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  bool has_value = false;
  WriteId id{};
  std::int64_t var_seq = 0;
  std::shared_ptr<const DepSnapshot> deps;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAdHocMsg;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    w.boolean(has_value);
    wire::put_write_id(w, id);
    w.i64(var_seq);
    // The in-memory snapshot is shared by every copy of the multicast; on
    // the wire each frame carries its own copy (real frames cannot share).
    w.u32(static_cast<std::uint32_t>(deps ? deps->size() : 0));
    if (deps) {
      for (const auto& [y, counts] : *deps) {
        w.i32(y);
        w.u32(static_cast<std::uint32_t>(counts.size()));
        for (std::int64_t c : counts) w.i64(c);
      }
    }
  }
};

const wire::BodyRegistrar adhoc_codec(
    wire::kAdHocMsg,
    [](WireReader& r) -> std::shared_ptr<const MessageBody> {
      auto b = std::make_shared<AdHocMsg>();
      b->x = r.i32();
      b->v = r.i64();
      b->has_value = r.boolean();
      b->id = wire::get_write_id(r);
      b->var_seq = r.i64();
      auto deps = std::make_shared<DepSnapshot>();
      const std::size_t vars = r.u32();
      deps->reserve(vars);
      for (std::size_t i = 0; i < vars; ++i) {
        const VarId y = r.i32();
        std::vector<std::int64_t> counts(r.u32());
        for (auto& c : counts) c = r.i64();
        deps->emplace_back(y, std::move(counts));
      }
      b->deps = std::move(deps);
      return b;
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kUpdateKind("AUPD");
const KindId kNotifyKind("ANOT");

}  // namespace

std::shared_ptr<const StaticRelevance> StaticRelevance::analyze(
    const graph::Distribution& dist) {
  auto out = std::make_shared<StaticRelevance>();
  const graph::ShareGraph sg(dist);
  out->relevant = graph::all_relevant_sets(sg);
  out->tracks.resize(dist.process_count());
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    for (ProcessId p : out->relevant[x]) {
      out->tracks[static_cast<std::size_t>(p)].push_back(
          static_cast<VarId>(x));
    }
  }
  return out;
}

CausalPartialAdHocProcess::CausalPartialAdHocProcess(
    ProcessId self, const graph::Distribution& dist,
    HistoryRecorder& recorder,
    std::shared_ptr<const StaticRelevance> analysis)
    : McsProcess(self, dist, recorder), analysis_(std::move(analysis)) {
  PARDSM_CHECK(analysis_ != nullptr, "ad-hoc protocol needs analysis");
  for (VarId y : analysis_->tracks[static_cast<std::size_t>(self)]) {
    seen_[y].assign(dist.process_count(), 0);
  }
}

std::int64_t CausalPartialAdHocProcess::seen(VarId y, ProcessId k) const {
  auto it = seen_.find(y);
  if (it == seen_.end()) return 0;
  return it->second[static_cast<std::size_t>(k)];
}

void CausalPartialAdHocProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void CausalPartialAdHocProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();

  // Dependencies are the counters BEFORE counting this write, so `seen_`
  // is left untouched until every message is built (avoids snapshotting
  // the whole map per write).
  auto& own = seen_.at(x);
  const std::int64_t var_seq = own[static_cast<std::size_t>(id())] + 1;

  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  const auto& relevant = analysis_->relevant[static_cast<std::size_t>(x)];

  // One shared snapshot per write (VarId order = map order); each
  // recipient's meta still charges only the entries that recipient
  // tracks.
  auto deps = std::make_shared<DepSnapshot>();
  deps->reserve(seen_.size());
  for (const auto& [y, counts] : seen_) deps->emplace_back(y, counts);

  for (ProcessId q : relevant) {
    if (q == id()) continue;
    const auto& q_tracks = analysis_->tracks[static_cast<std::size_t>(q)];

    auto body = std::make_shared<AdHocMsg>();
    body->x = x;
    body->id = wid;
    body->var_seq = var_seq;
    body->has_value = clique_holds(q, x);
    if (body->has_value) body->v = v;
    body->deps = deps;

    // Control bytes: pre-write counters restricted to variables q also
    // tracks.
    std::uint64_t dep_bytes = 0;
    for (const auto& [y, counts] : *deps) {
      if (!std::binary_search(q_tracks.begin(), q_tracks.end(), y)) continue;
      dep_bytes += 8 + 8 * counts.size();
    }

    MessageMeta meta;
    meta.kind = body->has_value ? kUpdateKind : kNotifyKind;
    meta.control_bytes = 16 /*write id*/ + 8 /*var*/ + 8 /*var_seq*/ +
                         dep_bytes;
    meta.payload_bytes = body->has_value ? 8 : 0;
    meta.vars_mentioned = {x};

    // Control bytes are restricted per recipient, so each gets its own
    // single-destination plan (in the pre-seam ascending order).
    emit_to(q, std::move(body), std::move(meta));
  }
  own[static_cast<std::size_t>(id())] = var_seq;
  done();
}

void CausalPartialAdHocProcess::handle_message(const Message& m) {
  buffer_.push_back(m);
  mutable_stats().max_buffer_depth = std::max(
      mutable_stats().max_buffer_depth,
      static_cast<std::uint64_t>(buffer_.size()));
  try_deliver();
}

bool CausalPartialAdHocProcess::ready(const Message& m) const {
  const auto* u = m.as<AdHocMsg>();
  PARDSM_CHECK(u != nullptr, "ad-hoc: unexpected message body");

  // Per-(writer, var) FIFO: this must be the next write of the sender on x
  // that we incorporate.
  auto it = seen_.find(u->x);
  PARDSM_CHECK(it != seen_.end(),
               "ad-hoc: received metadata for an untracked variable — "
               "routing violates Theorem 1 sets");
  if (it->second[static_cast<std::size_t>(m.from)] != u->var_seq - 1) {
    return false;
  }
  // Dependency domination for every variable we track (entries of the
  // shared snapshot we do not track carry no constraint for us).
  for (const auto& [y, counts] : *u->deps) {
    auto mine = seen_.find(y);
    if (mine == seen_.end()) continue;  // not tracked here: not our concern
    for (std::size_t k = 0; k < counts.size(); ++k) {
      if (mine->second[k] < counts[k]) return false;
    }
  }
  return true;
}

void CausalPartialAdHocProcess::deliver(const Message& m) {
  const auto* u = m.as<AdHocMsg>();
  seen_.at(u->x)[static_cast<std::size_t>(m.from)] = u->var_seq;
  if (u->has_value && replicates(u->x)) {
    mutable_store().put(u->x, u->v, u->id);
    ++mutable_stats().updates_applied;
  }
}

void CausalPartialAdHocProcess::try_deliver() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (!ready(*it)) {
        ++mutable_stats().updates_buffered;
        continue;
      }
      deliver(*it);
      buffer_.erase(it);
      progress = true;
      break;
    }
  }
}

}  // namespace pardsm::mcs
