// x-hoops (Definition 3) — enumeration and polynomial existence tests.
//
// An x-hoop is a path [p_a = p_0, p_1, ..., p_k = p_b] in SG between two
// distinct members of C(x) whose intermediate vertices lie outside C(x)
// and whose consecutive pairs share some variable other than x.
//
// Two complementary algorithms:
//
//  * enumerate_hoops — explicit DFS over simple paths.  Exponential in the
//    worst case; this is the cost §3.3 of the paper warns about
//    ("enumerating all the hoops can be very long"), measured by
//    bench_fig2_hoops.
//
//  * hoop_members — the set of processes lying on at least one x-hoop,
//    computed in polynomial time: v ∉ C(x) lies on an x-hoop iff there are
//    two vertex-disjoint paths (sharing only v) from v to two *distinct*
//    members of C(x) with all intermediates outside C(x).  We decide this
//    with a unit-capacity max-flow (value 2) per vertex.  Combined with
//    C(x) this yields the x-relevant set of Theorem 1 without any
//    enumeration.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "sharegraph/share_graph.h"

namespace pardsm::graph {

/// One hoop: the vertex path [p_a, ..., p_b]; endpoints in C(x),
/// intermediates outside.
using Hoop = std::vector<ProcessId>;

/// Result of an enumeration.
struct HoopEnumeration {
  std::vector<Hoop> hoops;   ///< canonical direction (front <= back)
  bool truncated = false;    ///< hit the limit
  std::uint64_t dfs_steps = 0;
};

/// Enumerate x-hoops with at least one intermediate vertex.  Paths are
/// canonicalized so that hoop.front() <= hoop.back(); enumeration stops
/// after `limit` hoops (truncated flag set).
[[nodiscard]] HoopEnumeration enumerate_hoops(const ShareGraph& sg, VarId x,
                                              std::size_t limit = 1u << 20);

/// True if at least one x-hoop (with an intermediate vertex) exists.
[[nodiscard]] bool hoop_exists(const ShareGraph& sg, VarId x);

/// All processes *outside C(x)* lying on at least one x-hoop (the hoops'
/// intermediate vertices; endpoints are C(x) members and are reported by
/// x_relevant instead).  Polynomial time (max-flow based).
[[nodiscard]] std::set<ProcessId> hoop_members(const ShareGraph& sg, VarId x);

/// Theorem 1: the x-relevant set = C(x) ∪ hoop members.
[[nodiscard]] std::set<ProcessId> x_relevant(const ShareGraph& sg, VarId x);

/// Convenience: x-relevant sets for every variable.
[[nodiscard]] std::vector<std::set<ProcessId>> all_relevant_sets(
    const ShareGraph& sg);

/// Summary statistics used by the efficiency analyzer and benches.
struct RelevanceSummary {
  std::size_t vars_with_hoops = 0;
  /// Σ_x |x-relevant| — total bookkeeping obligations under causal.
  std::size_t total_relevant = 0;
  /// Σ_x |C(x)| — total bookkeeping obligations under PRAM.
  std::size_t total_replicas = 0;
  /// total_relevant / total_replicas (1.0 = efficient partial replication).
  [[nodiscard]] double overhead_ratio() const {
    return total_replicas == 0
               ? 0.0
               : static_cast<double>(total_relevant) /
                     static_cast<double>(total_replicas);
  }
};
[[nodiscard]] RelevanceSummary summarize_relevance(const ShareGraph& sg);

}  // namespace pardsm::graph
