#include "apps/async_jacobi.h"

#include <algorithm>
#include <cstdlib>

#include "mcs/factory.h"
#include "simnet/check.h"
#include "simnet/rng.h"

namespace pardsm::apps {

JacobiProblem JacobiProblem::contraction(std::size_t n, std::uint64_t seed) {
  PARDSM_CHECK(n >= 2, "Jacobi problem needs >= 2 components");
  Rng rng(seed);
  JacobiProblem p;
  p.sub.assign(n, 0);
  p.diag.assign(n, 0);
  p.super.assign(n, 0);
  p.b.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // Row coefficients summing to ~0.6 in absolute value.
    const auto frac = [&](double f) {
      return static_cast<std::int64_t>(f * kJacobiScale);
    };
    p.diag[i] = frac(0.2);
    if (i > 0) p.sub[i] = frac(0.2);
    if (i + 1 < n) p.super[i] = frac(0.2);
    p.b[i] = frac(static_cast<double>(rng.range(-50, 50)) / 10.0);
  }
  return p;
}

namespace {

std::vector<std::int64_t> apply_row(const JacobiProblem& p,
                                    const std::vector<std::int64_t>& x) {
  const std::size_t n = p.size();
  std::vector<std::int64_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    __int128 acc = static_cast<__int128>(p.diag[i]) * x[i];
    if (i > 0) acc += static_cast<__int128>(p.sub[i]) * x[i - 1];
    if (i + 1 < n) acc += static_cast<__int128>(p.super[i]) * x[i + 1];
    out[i] = static_cast<std::int64_t>(acc / kJacobiScale) + p.b[i];
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> jacobi_reference(const JacobiProblem& p,
                                           std::size_t max_rounds) {
  std::vector<std::int64_t> x(p.size(), 0);
  for (std::size_t r = 0; r < max_rounds; ++r) {
    auto next = apply_row(p, x);
    if (next == x) break;
    x = std::move(next);
  }
  return x;
}

namespace {

/// x_i lives in variable i; C(x_i) = {i-1, i, i+1} ∩ range.
graph::Distribution make_distribution(std::size_t n) {
  graph::Distribution d;
  d.name = "jacobi-n" + std::to_string(n);
  d.var_count = n;
  d.per_process.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) d.per_process[i].push_back(static_cast<VarId>(i - 1));
    d.per_process[i].push_back(static_cast<VarId>(i));
    if (i + 1 < n) d.per_process[i].push_back(static_cast<VarId>(i + 1));
  }
  return d;
}

class Component {
 public:
  Component(std::size_t self, const JacobiProblem& p, mcs::McsProcess& mcs,
            Simulator& sim, const JacobiOptions& options)
      : self_(self), p_(p), mcs_(mcs), sim_(sim), options_(options) {}

  void start() {
    mcs_.write(static_cast<VarId>(self_), 0, [this] { round(); });
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::int64_t value() const { return x_; }

 private:
  void round() {
    if (rounds_done_ >= options_.rounds) {
      done_ = true;
      return;
    }
    // Read neighbours (stale values acceptable — no barrier at all).
    read_neighbour_left();
  }

  void read_neighbour_left() {
    if (self_ == 0) {
      left_ = 0;
      read_neighbour_right();
      return;
    }
    mcs_.read(static_cast<VarId>(self_ - 1), [this](Value v) {
      left_ = (v == kBottom) ? 0 : v;
      read_neighbour_right();
    });
  }

  void read_neighbour_right() {
    if (self_ + 1 >= p_.size()) {
      right_ = 0;
      update();
      return;
    }
    mcs_.read(static_cast<VarId>(self_ + 1), [this](Value v) {
      right_ = (v == kBottom) ? 0 : v;
      update();
    });
  }

  void update() {
    __int128 acc = static_cast<__int128>(p_.diag[self_]) * x_;
    if (self_ > 0) acc += static_cast<__int128>(p_.sub[self_]) * left_;
    if (self_ + 1 < p_.size()) {
      acc += static_cast<__int128>(p_.super[self_]) * right_;
    }
    x_ = static_cast<std::int64_t>(acc / kJacobiScale) + p_.b[self_];
    mcs_.write(static_cast<VarId>(self_), x_, [this] {
      ++rounds_done_;
      sim_.schedule_at(sim_.now() + options_.round_delay,
                       [this] { round(); });
    });
  }

  std::size_t self_;
  const JacobiProblem& p_;
  mcs::McsProcess& mcs_;
  Simulator& sim_;
  JacobiOptions options_;
  Value x_ = 0;
  Value left_ = 0;
  Value right_ = 0;
  std::size_t rounds_done_ = 0;
  bool done_ = false;
};

}  // namespace

JacobiResult run_async_jacobi(const JacobiProblem& p,
                              const JacobiOptions& options) {
  const std::size_t n = p.size();
  const auto dist = make_distribution(n);

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.latency = std::make_unique<UniformLatency>(millis(1), millis(6));
  Simulator sim(std::move(sim_options));

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs = mcs::make_processes(options.protocol, dist, recorder);
  for (auto& proc : procs) {
    sim.add_endpoint(proc.get());
    proc->attach(sim);
  }

  std::vector<std::unique_ptr<Component>> comps;
  for (std::size_t i = 0; i < n; ++i) {
    comps.push_back(
        std::make_unique<Component>(i, p, *procs[i], sim, options));
  }
  for (auto& c : comps) {
    sim.schedule_at(kTimeZero, [comp = c.get()] { comp->start(); });
  }
  sim.run();

  JacobiResult result;
  const auto reference = jacobi_reference(p);
  for (const auto& c : comps) {
    PARDSM_CHECK(c->done(), "Jacobi component did not finish");
    result.solution.push_back(c->value());
  }
  for (std::size_t i = 0; i < n; ++i) {
    result.max_abs_error = std::max(
        result.max_abs_error, std::abs(result.solution[i] - reference[i]));
  }
  // Tolerance: a few fixed-point ulps per unit magnitude.
  result.converged = result.max_abs_error <= kJacobiScale / 256;
  result.total_traffic = sim.stats().total();
  result.finished_at = sim.now();
  return result;
}

}  // namespace pardsm::apps
