// pardsm_lint rule-engine tests.  Two halves:
//
//  1. Unit tests over in-memory sources (scan_text / run_lint_on): lexer
//     corner cases, suppression targeting, annotation scoping, and the
//     call-vs-declaration heuristic of the determinism rule.
//  2. An integration sweep over tests/lint_fixtures/ — a tree shaped like
//     src/ with one seeded violation per rule plus one suppressed instance
//     of each.  The test pins every expected finding to its exact
//     file:line, so a rule that drifts (fires elsewhere, or not at all)
//     fails loudly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine.h"
#include "lexer.h"
#include "rules.h"
#include "scan.h"

namespace lint = pardsm::lint;

namespace {

/// "file:line:rule" keys for order-insensitive comparison with readable
/// gtest diffs.
std::vector<std::string> keys(const std::vector<lint::Diagnostic>& diags) {
  std::vector<std::string> out;
  out.reserve(diags.size());
  for (const lint::Diagnostic& d : diags) {
    out.push_back(d.file + ":" + std::to_string(d.line) + ":" + d.rule);
  }
  return out;
}

lint::Report lint_one(std::string rel, std::string_view text) {
  return lint::run_lint_on({lint::scan_text(std::move(rel), text)});
}

}  // namespace

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LintLexer, CommentsAndStringsProduceNoIdentTokens) {
  const auto lx = lint::lex(
      "// std::rand() in a comment\n"
      "/* system_clock in a block */\n"
      "const char* s = \"getenv mt19937\";\n"
      "const char* r = R\"(steady_clock)\";\n");
  for (const lint::Token& t : lx.tokens) {
    if (t.kind != lint::TokKind::kIdent) continue;
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "system_clock");
    EXPECT_NE(t.text, "getenv");
    EXPECT_NE(t.text, "mt19937");
    EXPECT_NE(t.text, "steady_clock");
  }
  ASSERT_EQ(lx.comments.size(), 2u);
  EXPECT_TRUE(lx.comments[0].standalone);
  EXPECT_TRUE(lx.comments[1].standalone);
}

TEST(LintLexer, RawStringWithCustomDelimiter) {
  // The ')"' inside the raw string is NOT the terminator; only ')delim"' is.
  const auto lx = lint::lex("auto s = R\"delim(x: )\" rand() )delim\"; int after;\n");
  bool saw_after = false;
  for (const lint::Token& t : lx.tokens) {
    if (t.kind == lint::TokKind::kIdent) {
      EXPECT_NE(t.text, "rand") << "raw-string contents leaked into tokens";
      if (t.text == "after") saw_after = true;
    }
  }
  EXPECT_TRUE(saw_after) << "lexer lost its footing after the raw string";
}

TEST(LintLexer, IncludeParsingAndTrailingCommentOnDirective) {
  const auto lx = lint::lex(
      "#include \"mcs/protocol.h\"\n"
      "#include <vector>\n"
      "#include \"apps/x.h\"  // pardsm-lint: allow(layer-dag)\n");
  ASSERT_EQ(lx.includes.size(), 3u);
  EXPECT_FALSE(lx.includes[0].angled);
  EXPECT_EQ(lx.includes[0].target, "mcs/protocol.h");
  EXPECT_TRUE(lx.includes[1].angled);
  EXPECT_EQ(lx.includes[1].target, "vector");
  EXPECT_EQ(lx.includes[2].line, 3);
  // The comment after the directive must survive as a trailing comment so
  // allow(...) markers work on #include lines.
  ASSERT_EQ(lx.comments.size(), 1u);
  EXPECT_EQ(lx.comments[0].line, 3);
  EXPECT_FALSE(lx.comments[0].standalone);
}

TEST(LintScan, LayerStemDerivationAndSuppressionTargeting) {
  const lint::FileScan fs = lint::scan_text(
      "mcs/engine_helpers.cpp",
      "int a;  // pardsm-lint: allow(determinism)\n"
      "// pardsm-lint: allow(rng-streams)\n"
      "int b;\n");
  EXPECT_EQ(fs.layer, "mcs");
  EXPECT_EQ(fs.stem, "engine_helpers");
  EXPECT_EQ(fs.base, "engine_helpers.cpp");
  EXPECT_TRUE(fs.allowed("determinism", 1));   // trailing: own line
  EXPECT_TRUE(fs.allowed("rng-streams", 3));   // standalone: next line
  EXPECT_FALSE(fs.allowed("rng-streams", 2));
  EXPECT_FALSE(fs.allowed("determinism", 3));
}

// ---------------------------------------------------------------------------
// R1 determinism: call-vs-declaration discrimination and the allowlist
// ---------------------------------------------------------------------------

TEST(LintRules, DeterminismFlagsCallsNotDeclarations) {
  const lint::Report r = lint_one(
      "mcs/clocky.cpp",
      "struct S {\n"
      "  long time = 0;\n"                       // member named time: legal
      "  long clock() const { return time; }\n"  // method named clock: legal
      "};\n"
      "long f() { return time(nullptr); }\n"     // line 5: a real call
      "long g(S& s) { return s.clock(); }\n");   // member call: legal
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::string>{"mcs/clocky.cpp:5:determinism"}));
}

TEST(LintRules, DeterminismAllowlistCoversWallClockRoots) {
  const std::string body = "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_one("simnet/thread_runtime.cpp", body).clean());
  EXPECT_TRUE(lint_one("simnet/socket_transport.cpp", body).clean());
  EXPECT_TRUE(lint_one("apps/pardsm_node.cpp", body).clean());
  EXPECT_TRUE(lint_one("mcs/engine.cpp", body).clean());
  // The same text anywhere else fires.
  EXPECT_EQ(lint_one("mcs/engine_core.cpp", body).findings.size(), 1u);
  EXPECT_EQ(lint_one("core/api.cpp", body).findings.size(), 1u);
}

// ---------------------------------------------------------------------------
// R2 rng-streams: layer scoping and the rng.h carve-out
// ---------------------------------------------------------------------------

TEST(LintRules, RngStreamsOnlyInSimnetAndMcsAndNotInRngItself) {
  const std::string body = "#include <random>\nstd::mt19937 gen(1);\n";
  EXPECT_EQ(lint_one("simnet/channel.cpp", body).findings.size(), 2u);
  EXPECT_EQ(lint_one("mcs/proto.cpp", body).findings.size(), 2u);
  EXPECT_TRUE(lint_one("simnet/rng.h", body).clean());
  EXPECT_TRUE(lint_one("workload/gen.cpp", body).clean());  // other layers exempt
}

// ---------------------------------------------------------------------------
// R3 pooled-reset: annotation scoping across classes in one file
// ---------------------------------------------------------------------------

TEST(LintRules, PooledResetNamedAnnotationDoesNotLeakAcrossClasses) {
  // Both classes have a member `x`; only A's annotation names it.  B's `x`
  // must still fire even though the file contains an annotation for "x".
  const lint::Report r = lint_one(
      "mcs/two_bodies.cpp",
      "struct MessageBody {};\n"
      "struct A : MessageBody {\n"
      "  int x = 0;\n"
      "  // pardsm-lint: overwritten-by-creator(x)\n"
      "  void reset() {}\n"
      "};\n"
      "struct B : MessageBody {\n"
      "  int x = 0;\n"  // line 8
      "  void reset() {}\n"
      "};\n");
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::string>{"mcs/two_bodies.cpp:8:pooled-reset"}));
}

TEST(LintRules, PooledResetSkipsTypesWithoutReset) {
  EXPECT_TRUE(lint_one("mcs/no_reset.cpp",
                       "struct MessageBody {};\n"
                       "struct P : MessageBody { int stale = 0; };\n")
                  .clean());
}

// ---------------------------------------------------------------------------
// R4 unordered-iter: layer sensitivity of the declaration check
// ---------------------------------------------------------------------------

TEST(LintRules, UnorderedDeclOnlyFlaggedInOrderSensitiveLayers) {
  const std::string decl = "#include <unordered_map>\nstd::unordered_map<int,int> m;\n";
  EXPECT_EQ(lint_one("history/h.cpp", decl).findings.size(), 1u);
  EXPECT_EQ(lint_one("workload/w.cpp", decl).findings.size(), 1u);
  EXPECT_TRUE(lint_one("core/c.cpp", decl).clean());
  EXPECT_TRUE(lint_one("apps/a.cpp", decl).clean());
  // ...but a range-for over one fires anywhere, core included.
  const lint::Report r = lint_one(
      "core/c.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int,int> m;\n"
      "int f() { int s = 0; for (auto& kv : m) s += kv.second; return s; }\n");
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::string>{"core/c.cpp:3:unordered-iter"}));
}

// ---------------------------------------------------------------------------
// R5 layer-dag: rank table and angled-include exemption
// ---------------------------------------------------------------------------

TEST(LintRules, LayerRankMatchesDocumentedOrder) {
  EXPECT_LT(lint::layer_rank("simnet"), lint::layer_rank("history"));
  EXPECT_LT(lint::layer_rank("history"), lint::layer_rank("sharegraph"));
  EXPECT_LT(lint::layer_rank("sharegraph"), lint::layer_rank("workload"));
  EXPECT_LT(lint::layer_rank("workload"), lint::layer_rank("mcs"));
  EXPECT_LT(lint::layer_rank("mcs"), lint::layer_rank("core"));
  EXPECT_LT(lint::layer_rank("core"), lint::layer_rank("apps"));
  EXPECT_EQ(lint::layer_rank("tools"), -1);
}

TEST(LintRules, LayerDagFlagsUpwardQuotedIncludesOnly) {
  const lint::Report r = lint_one(
      "simnet/foo.cpp",
      "#include \"simnet/check.h\"\n"   // own layer: fine
      "#include \"mcs/protocol.h\"\n"   // line 2: upward edge
      "#include <unordered_map>\n"      // angled: exempt from layer rule
      "#include \"local_helper.h\"\n"); // no layer prefix: fine
  // The unordered_map *include* is a directive, not a declaration token, so
  // the unordered-iter rule stays quiet even though simnet is sensitive.
  EXPECT_EQ(keys(r.findings),
            (std::vector<std::string>{"simnet/foo.cpp:2:layer-dag"}));
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(LintReport, TextAndJsonRenderings) {
  const lint::Report r =
      lint_one("mcs/bad.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string text = lint::render_text(r);
  EXPECT_NE(text.find("mcs/bad.cpp:1: [determinism]"), std::string::npos);
  EXPECT_NE(text.find("1 file"), std::string::npos);
  const std::string json = lint::render_json(r);
  EXPECT_NE(json.find("\"schema\": \"pardsm-lint-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"determinism\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fixture tree: every rule fires at its pinned line, suppressions hold
// ---------------------------------------------------------------------------

TEST(LintFixtures, EveryRuleFiresExactlyWhereSeeded) {
  lint::LintOptions opts;
  opts.roots = {LINT_FIXTURE_DIR};
  const lint::Report r = lint::run_lint(opts);

  EXPECT_EQ(r.files_scanned, 7);

  const std::vector<std::string> expected_findings = {
      "history/fixture_layer.cpp:6:layer-dag",
      "history/fixture_unordered.cpp:10:unordered-iter",
      "history/fixture_unordered.cpp:12:unordered-iter",
      "mcs/fixture_determinism.cpp:11:determinism",
      "mcs/fixture_determinism.cpp:15:determinism",
      "mcs/fixture_determinism.cpp:19:determinism",
      "mcs/fixture_pooled_reset.cpp:9:pooled-reset",
      "simnet/fixture_rng.cpp:4:rng-streams",
      "simnet/fixture_rng.cpp:9:rng-streams",
      "simnet/fixture_rng.cpp:13:rng-streams",
      "simnet/fixture_rng.cpp:14:rng-streams",
  };
  EXPECT_EQ(keys(r.findings), expected_findings);

  const std::vector<std::string> expected_suppressed = {
      "history/fixture_layer.cpp:7:layer-dag",
      "history/fixture_unordered.cpp:29:unordered-iter",
      "mcs/fixture_determinism.cpp:23:determinism",
      "mcs/fixture_determinism.cpp:27:determinism",
      "mcs/fixture_pooled_reset.cpp:18:pooled-reset",
      "simnet/fixture_rng.cpp:19:rng-streams",
  };
  EXPECT_EQ(keys(r.suppressed), expected_suppressed);

  // Every rule fired at least once — no silent dead rule.
  for (const std::string& rule : lint::rule_names()) {
    EXPECT_GT(r.by_rule.count(rule), 0u) << "rule never fired: " << rule;
  }

  // The lexer-trap and allowlist fixtures contribute zero diagnostics.
  for (const lint::Diagnostic& d : r.findings) {
    EXPECT_EQ(d.file.find("fixture_lexer_traps"), std::string::npos);
    EXPECT_EQ(d.file.find("thread_runtime"), std::string::npos);
  }
}

TEST(LintFixtures, RuleNamesAreStable) {
  EXPECT_EQ(lint::rule_names(),
            (std::vector<std::string>{"determinism", "rng-streams",
                                      "pooled-reset", "unordered-iter",
                                      "layer-dag"}));
}
