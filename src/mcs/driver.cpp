#include "mcs/driver.h"

#include "simnet/rng.h"

namespace pardsm::mcs {

std::vector<Script> make_random_scripts(const graph::Distribution& dist,
                                        const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Script> scripts(dist.process_count());
  Value next_value = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto& mine = dist.per_process[p];
    if (mine.empty()) continue;
    Script& script = scripts[p];
    for (std::size_t i = 0; i < spec.ops_per_process; ++i) {
      const VarId x = mine[static_cast<std::size_t>(rng.below(mine.size()))];
      if (rng.chance(spec.read_fraction)) {
        script.push_back(ScriptOp::read(x, spec.think_time));
      } else {
        script.push_back(ScriptOp::write(x, next_value++, spec.think_time));
      }
    }
  }
  return scripts;
}

std::vector<Script> make_single_writer_scripts(const graph::Distribution& dist,
                                               const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  const CliqueTable cliques(dist);
  std::vector<Script> scripts(dist.process_count());
  Value next_value = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto& mine = dist.per_process[p];
    if (mine.empty()) continue;
    std::vector<VarId> writable;
    for (VarId x : mine) {
      if (cliques.clique(x).front() == static_cast<ProcessId>(p)) {
        writable.push_back(x);
      }
    }
    Script& script = scripts[p];
    for (std::size_t i = 0; i < spec.ops_per_process; ++i) {
      if (writable.empty() || rng.chance(spec.read_fraction)) {
        const VarId x =
            mine[static_cast<std::size_t>(rng.below(mine.size()))];
        script.push_back(ScriptOp::read(x, spec.think_time));
      } else {
        const VarId x = writable[static_cast<std::size_t>(
            rng.below(writable.size()))];
        script.push_back(ScriptOp::write(x, next_value++, spec.think_time));
      }
    }
  }
  return scripts;
}

namespace {

/// The shared slice of all three wrappers.
EngineConfig base_config(ProtocolKind kind, const graph::Distribution& dist,
                         const std::vector<Script>& scripts,
                         RunOptions&& options) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.sim_seed = options.sim_seed;
  config.channel = options.channel;
  config.latency = std::move(options.latency);
  config.reliable = options.reliable;
  return config;
}

}  // namespace

RunResult run_workload(ProtocolKind kind, const graph::Distribution& dist,
                       const std::vector<Script>& scripts,
                       RunOptions options) {
  EngineConfig config = base_config(kind, dist, scripts, std::move(options));
  config.reliability = ReliabilityMode::kNever;
  ScenarioRunResult r = run(std::move(config));
  return static_cast<RunResult&&>(std::move(r));  // move-slice, no copy
}

ScenarioRunResult run_scenario(ProtocolKind kind,
                               const graph::Distribution& dist,
                               const std::vector<Script>& scripts,
                               const Scenario& scenario, RunOptions options) {
  EngineConfig config = base_config(kind, dist, scripts, std::move(options));
  // Any loss source — the timeline's or the ChannelOptions the caller
  // seeded the channel with — needs the ARQ layer for liveness.
  config.reliability = ReliabilityMode::kAuto;
  config.scenario = &scenario;
  return run(std::move(config));
}

RunResult run_workload_parallel(ProtocolKind kind,
                                const graph::Distribution& dist,
                                const std::vector<Script>& scripts,
                                unsigned threads, RunOptions options) {
  EngineConfig config = base_config(kind, dist, scripts, std::move(options));
  config.reliability = ReliabilityMode::kNever;
  config.runtime = EngineRuntime::kParallelSim;
  config.parallel.num_threads = threads;
  ScenarioRunResult r = run(std::move(config));
  return static_cast<RunResult&&>(std::move(r));
}

ScenarioRunResult run_scenario_parallel(ProtocolKind kind,
                                        const graph::Distribution& dist,
                                        const std::vector<Script>& scripts,
                                        const Scenario& scenario,
                                        unsigned threads, RunOptions options) {
  EngineConfig config = base_config(kind, dist, scripts, std::move(options));
  config.reliability = ReliabilityMode::kAuto;
  config.scenario = &scenario;
  config.runtime = EngineRuntime::kParallelSim;
  config.parallel.num_threads = threads;
  return run(std::move(config));
}

RunResult run_workload_threaded(ProtocolKind kind,
                                const graph::Distribution& dist,
                                const std::vector<Script>& scripts,
                                std::chrono::milliseconds quiesce_timeout) {
  EngineConfig config;
  config.protocol = kind;
  config.distribution = &dist;
  config.scripts = &scripts;
  config.runtime = EngineRuntime::kThreads;
  config.reliability = ReliabilityMode::kNever;
  config.quiesce_timeout = quiesce_timeout;
  ScenarioRunResult r = run(std::move(config));
  return static_cast<RunResult&&>(std::move(r));
}

}  // namespace pardsm::mcs
