// The five contract rules.  Each rule reads one FileScan and appends
// diagnostics; suppression filtering happens later in the engine so the
// report can count suppressed findings.
//
//   determinism    (R1)  wall-clock / environment / libc-rand calls outside
//                        the wall-clock roots allowlist
//   rng-streams    (R2)  <random> engines & distributions in simnet/mcs
//                        instead of simnet/rng.h's Rng / counter_rng
//   pooled-reset   (R3)  BodyPool-recycled types whose reset() neither
//                        clears a member nor carries an
//                        `overwritten-by-creator` annotation for it
//   unordered-iter (R4)  hash-ordered container iteration, and unordered
//                        containers declared in order-sensitive layers
//   layer-dag      (R5)  #include edges that climb the layer DAG
//                        (simnet <- history <- sharegraph <- workload
//                         <- mcs <- core <- apps)
#pragma once

#include <string>
#include <vector>

#include "scan.h"

namespace pardsm::lint {

struct Diagnostic {
  std::string file;  ///< FileScan::path
  int line = 0;
  std::string rule;
  std::string message;
};

inline constexpr const char kRuleDeterminism[] = "determinism";
inline constexpr const char kRuleRngStreams[] = "rng-streams";
inline constexpr const char kRulePooledReset[] = "pooled-reset";
inline constexpr const char kRuleUnorderedIter[] = "unordered-iter";
inline constexpr const char kRuleLayerDag[] = "layer-dag";

/// All rule names, in the order rules run (stable for --json output).
const std::vector<std::string>& rule_names();

/// Run every rule over `fs`, appending raw (unfiltered) diagnostics.
void run_all_rules(const FileScan& fs, std::vector<Diagnostic>& out);

/// Rank of a layer in the dependency order; -1 for unknown directories
/// (tests, tools, fixtures outside the seven layers).
int layer_rank(const std::string& layer);

}  // namespace pardsm::lint
