// Messages exchanged between MCS processes.
//
// Protocol payloads are polymorphic MessageBody subclasses (no byte-level
// serialization: both runtimes live in one address space).  What the paper
// cares about — how much *control information* travels and which variables
// that information concerns — is declared explicitly in MessageMeta by the
// sending protocol and audited by NetworkStats / the efficiency analyzer.
//
// MessageMeta is engineered to move through the event queue without heap
// allocations: the kind tag is an interned 2-byte KindId and the mentioned
// variables live in a small-buffer container (every protocol here mentions
// 0-2 variables per message).
#pragma once

#include <cstdint>
#include <memory>

#include "simnet/ids.h"
#include "simnet/kind_table.h"
#include "simnet/sim_time.h"
#include "simnet/small_vec.h"

namespace pardsm {

class WireWriter;  // simnet/wire.h

/// Base class for protocol-defined message contents.
///
/// Bodies are plain in-memory objects for the simulated runtimes (one
/// address space, no serialization).  The real-sockets root needs bytes:
/// a body that may cross a TCP frame overrides wire_type()/wire_encode()
/// and registers a decoder (wire::BodyRegistrar).  The default wire_type
/// of 0 means "not serializable" — SocketTransport rejects such bodies
/// loudly instead of silently corrupting a frame.
class MessageBody {
 public:
  virtual ~MessageBody() = default;

  /// Stable wire tag (wire::WireType); 0 = cannot cross a socket.
  [[nodiscard]] virtual std::uint32_t wire_type() const { return 0; }

  /// Append the body's fields to `w` (inverse of the registered decoder).
  virtual void wire_encode(WireWriter& w) const { (void)w; }
};

/// Accounting metadata attached to every message by the sending protocol.
struct MessageMeta {
  /// Interned tag for traces, e.g. "UPD", "NOTIFY", "ACK".  Assigning a
  /// string literal interns it; hot paths should assign a cached KindId.
  KindId kind;

  /// Bytes of protocol control information (timestamps, ids, clocks...).
  std::uint64_t control_bytes = 0;

  /// Bytes of application data (the written value itself).
  std::uint64_t payload_bytes = 0;

  /// Variables about which this message carries *metadata*.  A process that
  /// receives a message mentioning x becomes observably x-relevant — the
  /// quantity Theorem 1 and Theorem 2 of the paper characterize.
  SmallVec<VarId, 2> vars_mentioned;

  /// Transport hint, not wire data: a coalescing layer (BatchingTransport)
  /// must flush rather than delay this message — set by protocols for
  /// completion-blocking traffic (RPCs, commits, re-sync).  Never counted
  /// in wire_bytes() and ignored by non-batching transports.
  bool urgent = false;

  /// Total bytes on the wire (header modelled as 16 bytes).
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return 16 + control_bytes + payload_bytes;
  }
};

/// A message in flight or being delivered.
struct Message {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  std::shared_ptr<const MessageBody> body;
  MessageMeta meta;

  /// Filled by the runtime.
  std::uint64_t id = 0;
  TimePoint send_time{};
  TimePoint deliver_time{};

  /// Convenience typed access to the body.  Returns nullptr on mismatch.
  template <typename T>
  [[nodiscard]] const T* as() const {
    return dynamic_cast<const T*>(body.get());
  }
};

}  // namespace pardsm
