// Protocol framework: the MCS process abstraction.
//
// An McsProcess pairs with one application process: the application calls
// read()/write() (asynchronous, callback-based — wait-free protocols
// complete them synchronously before returning), the MCS process exchanges
// messages with its peers through the Transport to keep replicas
// consistent, and every completed operation is recorded for post-hoc
// checking.
//
// The asynchronous operation API is what lets the same protocol code run
// under the single-threaded discrete-event simulator (where a blocking
// call would deadlock the event loop) and under the thread runtime.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mcs/recorder.h"
#include "mcs/replica_store.h"
#include "sharegraph/share_graph.h"
#include "simnet/check.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm::mcs {

/// Completion callback of a read (receives the value returned).
using ReadCallback = std::function<void(Value)>;

/// Completion callback of a write.
using WriteCallback = std::function<void()>;

/// Protocol-internal counters (beyond NetworkStats).
struct ProtocolStats {
  std::uint64_t local_reads = 0;    ///< reads served from the local replica
  std::uint64_t remote_reads = 0;   ///< reads that required a round trip
  std::uint64_t writes = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_buffered = 0;  ///< delayed for causal readiness
  std::uint64_t max_buffer_depth = 0;
};

/// Crash/recovery counters of one process (scenario runs; all zero on a
/// fault-free run).  Re-sync traffic travels as ordinary messages, so its
/// bytes are *also* charged to NetworkStats — these counters isolate the
/// recovery share for the overhead ledger.
struct RecoveryStats {
  std::uint64_t crashes = 0;
  std::uint64_t resync_requests_sent = 0;
  std::uint64_t resync_responses_served = 0;  ///< answered as a peer
  std::uint64_t resync_values_applied = 0;
  /// Wire bytes of re-sync requests sent plus responses received — the
  /// recovery cost charged to this process.
  std::uint64_t resync_bytes = 0;
  std::uint64_t deliveries_dropped_while_down = 0;
  std::uint64_t timers_deferred = 0;  ///< timer fires postponed past downtime
};

/// Immutable var → C(x) table, built in one pass over the distribution
/// (O(Σ|X_i|)).  Protocols consult C(x) on every write, and
/// Distribution::replicas_of allocates a fresh vector per call — far too
/// expensive for the hot path.  One table is shared by all processes of a
/// system (make_processes injects it).
class CliqueTable {
 public:
  explicit CliqueTable(const graph::Distribution& dist) {
    cliques_.resize(dist.var_count);
    // Two passes: count then fill.  At large n (thousands of processes,
    // thousands of variables) the push_back-only build reallocates every
    // clique log|C(x)| times; exact reserves make construction one
    // allocation per variable.
    std::vector<std::uint32_t> sizes(dist.var_count, 0);
    for (const auto& held : dist.per_process) {
      for (VarId x : held) {
        PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < dist.var_count,
                     "CliqueTable: variable id out of range");
        ++sizes[static_cast<std::size_t>(x)];
      }
    }
    for (std::size_t x = 0; x < dist.var_count; ++x) {
      cliques_[x].reserve(sizes[x]);
    }
    for (std::size_t p = 0; p < dist.per_process.size(); ++p) {
      for (VarId x : dist.per_process[p]) {
        cliques_[static_cast<std::size_t>(x)].push_back(
            static_cast<ProcessId>(p));  // p ascending → sorted
      }
    }
    // A process listing x twice must appear in C(x) once, exactly as
    // Distribution::replicas_of reports it.
    for (auto& clique : cliques_) {
      clique.erase(std::unique(clique.begin(), clique.end()), clique.end());
    }
  }

  [[nodiscard]] const std::vector<ProcessId>& clique(VarId x) const {
    PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < cliques_.size(),
                 "CliqueTable: bad variable");
    return cliques_[static_cast<std::size_t>(x)];
  }

 private:
  std::vector<std::vector<ProcessId>> cliques_;
};

/// One protocol send round: the same body to a set of destinations, with
/// shared accounting metadata and an urgency hint.  This is what protocols
/// emit instead of calling Transport::send per destination — the seam that
/// preserves the multicast structure all the way to the transport plane
/// (a batching layer coalesces, a future true-multicast network could
/// fan out natively).
///
/// Protocols whose per-recipient metadata differs (causal-partial-naive's
/// update/notify split, causal-partial-adhoc's per-recipient dependency
/// restriction) emit one single-destination plan per recipient — exactly
/// the bytes a real implementation would put on the wire for that
/// recipient, and exactly the send order of the pre-seam code.
struct SendPlan {
  BodyRef body;
  /// Accounting metadata, copied per destination on expansion.
  MessageMeta meta;
  /// Destination set in emission order (ascending for determinism; the
  /// sender itself is never listed).
  SmallVec<ProcessId, 8> to;
  /// Completion-blocking traffic (RPCs, commits, re-sync): transports
  /// must forward it immediately rather than coalesce it.
  bool urgent = false;
};

/// How a SendPlan reaches the wire.  The default expansion is one
/// point-to-point Transport::send per destination, in plan order — which
/// keeps per-destination FIFO and is bit-identical to the historical
/// per-destination send loops.  Implementations must preserve
/// per-destination FIFO across successive submits from one sender.
class MulticastService {
 public:
  virtual ~MulticastService() = default;

  virtual void submit(Transport& transport, ProcessId from,
                      SendPlan&& plan) = 0;

  /// The default stateless point-to-point expansion (shared instance).
  [[nodiscard]] static MulticastService& fanout();
};

/// Base class of every memory-consistency protocol instance (one per
/// process).
class McsProcess : public Endpoint {
 public:
  /// `dist` and `recorder` must outlive the process; `transport` is wired
  /// afterwards via attach() because process ids are assigned by the
  /// runtime at registration time.
  McsProcess(ProcessId self, const graph::Distribution& dist,
             HistoryRecorder& recorder)
      : self_(self),
        dist_(dist),
        recorder_(recorder),
        store_(dist.per_process.at(static_cast<std::size_t>(self))) {}

  /// Share one clique table across all processes of a system (the factory
  /// calls this; a process constructed stand-alone builds its own lazily).
  void use_clique_table(std::shared_ptr<const CliqueTable> table) {
    cliques_ = std::move(table);
  }

  /// Wire the transport (after runtime registration).  on_attach() lets
  /// protocols cache per-type body-pool handles from the transport's
  /// arena, next to their cached KindIds.
  void attach(Transport& transport) {
    transport_ = &transport;
    on_attach();
  }

  /// Replace the multicast expansion (the engine injects this; default is
  /// MulticastService::fanout()).  Must outlive the process.
  void use_multicast(MulticastService& service) { mcast_ = &service; }

  /// Asynchronous read of x; `done` receives the value.  Calling read on a
  /// variable outside X_i is a programming error (partial replication
  /// means the application only accesses its own variables).
  virtual void read(VarId x, ReadCallback done) = 0;

  /// Asynchronous write of v to x.
  virtual void write(VarId x, Value v, WriteCallback done) = 0;

  // -- runtime plumbing (final: the base owns crash filtering and the
  // re-sync handshake; protocols implement handle_message/handle_timer) ---
  void on_message(const Message& m) final;
  void on_timer(TimerTag tag) final;

  // -- crash / recovery (driven by scenario timelines) ----------------------
  /// Fail-pause crash: the process stops observing the world.  The network
  /// layer (Network::set_down) stops its traffic in both directions; the
  /// base additionally drops any delivery or defers any timer that slips
  /// through while down.  Replica contents and protocol state survive (the
  /// paper's MCS process is the durable memory system — the *channel* to
  /// it fails), but everything in flight toward the process is lost and
  /// must be repaired by ARQ retransmission and/or recovery re-sync.
  void crash();

  /// End the downtime: resume processing and re-sync the replica set — for
  /// each held variable, the lowest-id other member of C(x) is asked for
  /// its current (value, provenance) copy.  Responses are applied under a
  /// never-regress rule (see apply_resync_entry) and every re-sync byte is
  /// charged to NetworkStats like any other control traffic.
  void recover();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return rstats_;
  }
  /// True while re-sync responses are outstanding after a recover().
  [[nodiscard]] bool resync_in_progress() const {
    return pending_resyncs_ > 0;
  }
  /// Time from the last recover() to its final re-sync response (zero if
  /// never crashed or not yet fully re-synced).
  [[nodiscard]] Duration last_recovery_latency() const {
    return last_recovery_latency_;
  }
  /// Slowest completed recover()→re-sync interval across every crash
  /// cycle of this process.
  [[nodiscard]] Duration max_recovery_latency() const {
    return max_recovery_latency_;
  }

  /// Human-readable protocol name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if this protocol serves reads and writes without waiting for the
  /// network (the paper's wait-free local-access property, §3.3).
  [[nodiscard]] virtual bool wait_free() const = 0;

  [[nodiscard]] ProcessId id() const { return self_; }
  /// The attached transport's clock (simulated or wall, per runtime).
  /// Public so engine clients can timestamp operations on the same clock
  /// the protocol runs on.
  [[nodiscard]] TimePoint now() const {
    return transport_ ? transport_->now() : TimePoint{};
  }
  [[nodiscard]] const ProtocolStats& stats() const { return pstats_; }
  [[nodiscard]] const ReplicaStore& store() const { return store_; }
  [[nodiscard]] bool replicates(VarId x) const { return store_.holds(x); }

 protected:
  /// Protocol message handling (what on_message dispatched to before the
  /// crash/re-sync layer interposed).
  virtual void handle_message(const Message& m) = 0;

  /// Protocol timer handling; default: no protocol uses timers.
  virtual void handle_timer(TimerTag tag) { (void)tag; }

  /// Crash hooks for protocol-specific volatile state.  The default
  /// fail-pause model keeps all state, so these are no-ops.
  virtual void on_crash() {}
  virtual void on_recover() {}

  /// Called from attach(): override to cache BodyPool handles (via
  /// arena()) so hot-path body creation is a freelist pop, not an arena
  /// lookup.
  virtual void on_attach() {}

  /// This process's body pools on the attached runtime root.
  [[nodiscard]] BodyArena& arena() { return transport().arena(self_); }

  /// Peer asked for x's current copy during re-sync: the lowest-id member
  /// of C(x) other than self (kNoProcess = no peer, skip the variable).
  /// causal-full overrides this — under full replication any process can
  /// serve any variable, including those whose clique excludes it.
  [[nodiscard]] virtual ProcessId resync_source(VarId x) const;

  /// May a re-synced copy of x served by `responder` be adopted into the
  /// local store (it still passes the base never-regress rule afterwards)?
  ///
  /// Adoption is sound only when every in-flight or future update of x
  /// destined to this process travels on the responder→self channel: ARQ
  /// delivers per-pair FIFO, so the re-sync response then arrives *after*
  /// any older backlog and the adopted copy can never be crossed by a
  /// stale redelivery.  Protocols where that holds opt in (pram: entries
  /// written by the responder itself; home-based protocols: entries served
  /// by x's home).  The default is a veto — correct for every protocol
  /// whose apply path is gated (causal vector clocks, slow-memory jitter
  /// buffers, processor prior-count buffering): adopting a value past such
  /// a gate could expose it before its delivery preconditions, and the
  /// gated backlog repairs the state anyway.
  [[nodiscard]] virtual bool resync_adoptable(VarId x, ProcessId responder,
                                              const WriteId& source) const {
    (void)x;
    (void)responder;
    (void)source;
    return false;
  }

  [[nodiscard]] Transport& transport() {
    PARDSM_CHECK(transport_ != nullptr, "McsProcess used before attach()");
    return *transport_;
  }
  [[nodiscard]] const graph::Distribution& distribution() const {
    return dist_;
  }
  /// C(x) as a sorted list from the cached table (no allocation per call,
  /// unlike Distribution::replicas_of).
  [[nodiscard]] const std::vector<ProcessId>& replicas_of(VarId x) const {
    if (!cliques_) cliques_ = std::make_shared<CliqueTable>(dist_);
    return cliques_->clique(x);
  }
  /// True if process q replicates x (binary search of the cached C(x)).
  [[nodiscard]] bool clique_holds(ProcessId q, VarId x) const {
    const auto& c = replicas_of(x);
    return std::binary_search(c.begin(), c.end(), q);
  }
  [[nodiscard]] HistoryRecorder& recorder() { return recorder_; }
  [[nodiscard]] ReplicaStore& mutable_store() { return store_; }
  [[nodiscard]] ProtocolStats& mutable_stats() { return pstats_; }

  /// Emit one send round through the multicast seam.  `plan.urgent` is
  /// propagated into the per-message metadata so coalescing transports
  /// flush instead of delaying completion-blocking traffic.
  void emit(SendPlan&& plan) {
    plan.meta.urgent = plan.urgent;
    mcast_->submit(transport(), self_, std::move(plan));
  }

  /// Convenience: a single-destination plan (RPCs, replies, per-recipient
  /// metadata variants).
  void emit_to(ProcessId to, BodyRef body, MessageMeta meta,
               bool urgent = false) {
    SendPlan plan;
    plan.body = std::move(body);
    plan.meta = std::move(meta);
    plan.to.push_back(to);
    plan.urgent = urgent;
    emit(std::move(plan));
  }

  /// Serve a read from the local replica, recording it.  Shared by all
  /// wait-free protocols.
  void local_read(VarId x, const ReadCallback& done) {
    PARDSM_CHECK(store_.holds(x),
                 "application read of a variable outside X_i");
    const Stored& s = store_.get(x);
    ++pstats_.local_reads;
    const TimePoint t = now();
    recorder_.record_read(self_, x, s.value, s.source, t, t);
    done(s.value);
  }

 private:
  void start_resync();
  void serve_resync_request(const Message& m);
  void absorb_resync_response(const Message& m);
  /// Never-regress apply rule for one re-synced (x, value, source) entry.
  void apply_resync_entry(VarId x, Value value, const WriteId& source,
                          ProcessId responder);

  ProcessId self_;
  const graph::Distribution& dist_;
  HistoryRecorder& recorder_;
  ReplicaStore store_;
  ProtocolStats pstats_;
  Transport* transport_ = nullptr;
  MulticastService* mcast_ = &MulticastService::fanout();
  /// Shared (or lazily self-built) C(x) table; mutable for the lazy path.
  mutable std::shared_ptr<const CliqueTable> cliques_;

  // -- crash / re-sync state ------------------------------------------------
  bool crashed_ = false;
  /// Timer fires parked during downtime, replayed in order on recovery.
  std::vector<TimerTag> deferred_timers_;
  /// Discriminates re-sync rounds: responses from a superseded recovery
  /// (the process crashed again mid-re-sync) are ignored.
  std::uint32_t resync_epoch_ = 0;
  std::uint32_t pending_resyncs_ = 0;
  TimePoint recovery_started_{};
  Duration last_recovery_latency_{};
  Duration max_recovery_latency_{};
  RecoveryStats rstats_;
};

/// The protocols implemented in this repository.  The last two are the
/// repository's extensions toward the paper's open question (conclusion):
/// criteria other than / stronger than PRAM that still admit efficient
/// partial replication.
enum class ProtocolKind {
  kAtomicHome,          ///< linearizable, home-based RPC
  kSequencerSC,         ///< sequentially consistent, sequencer total order
  kCausalFull,          ///< causal, full replication, vector clocks [3]
  kCausalPartialNaive,  ///< causal, partial replicas, global notifications
  kCausalPartialAdHoc,  ///< causal, partial replicas, hoop-routed metadata
  kPramPartial,         ///< PRAM, partial replicas (the paper's efficient case)
  kSlowPartial,         ///< slow memory, partial replicas
  kCachePartial,        ///< cache consistency, per-variable home sequencing
  kProcessorPartial,    ///< PRAM ∧ cache (processor consistency)
};

[[nodiscard]] const char* to_string(ProtocolKind k);

/// All protocol kinds, strongest criterion first.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocols();

/// The weakest criterion each protocol is required to satisfy (used by
/// property tests: recorded histories must pass this checker and all
/// weaker ones).
enum class GuaranteeLevel {
  kAtomic,
  kSequential,
  kCausal,
  kProcessor,  ///< PRAM ∧ cache
  kPram,
  kCache,      ///< per-variable sequential consistency (incomparable to PRAM)
  kSlow,
};
[[nodiscard]] GuaranteeLevel guarantee_of(ProtocolKind k);

}  // namespace pardsm::mcs
