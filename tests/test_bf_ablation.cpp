// Bellman-Ford ablation: which criteria are strong enough for Figure 7?
//
// The algorithm's barrier hand-off (write x_i, then advance k_i; readers
// gate on k) relies on per-writer *cross-variable* ordering — exactly what
// PRAM adds over slow memory.  On the slow-memory protocol the hand-off
// can observably break (a reader sees k_h without the x_h written before
// it); on PRAM it never does.  Cache consistency lacks the cross-variable
// coupling too; processor consistency restores it.

#include <gtest/gtest.h>

#include "apps/bellman_ford.h"

namespace pardsm::apps {
namespace {

TEST(BellmanFordAblation, PramNeverBreaksTheHandOff) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BellmanFordOptions options;
    options.sim_seed = seed;
    const auto r = run_bellman_ford(WeightedGraph::fig8(), options);
    EXPECT_EQ(r.handoff_violations, 0u) << "seed " << seed;
    EXPECT_TRUE(r.matches_reference) << "seed " << seed;
  }
}

TEST(BellmanFordAblation, ProcessorConsistencyAlsoSuffices) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    BellmanFordOptions options;
    options.sim_seed = seed;
    options.protocol = mcs::ProtocolKind::kProcessorPartial;
    const auto r = run_bellman_ford(WeightedGraph::fig8(), options);
    EXPECT_EQ(r.handoff_violations, 0u) << "seed " << seed;
    EXPECT_TRUE(r.matches_reference) << "seed " << seed;
  }
}

TEST(BellmanFordAblation, SlowMemoryObservablyBreaksTheHandOff) {
  // Slow memory may reorder one writer's x and k updates; across seeds the
  // breakage must be witnessed at least once (the distances can still be
  // right by luck — monotone relaxation forgives staleness — so the
  // violation counter is the reliable witness).
  std::uint64_t total_violations = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    BellmanFordOptions options;
    options.sim_seed = seed;
    options.protocol = mcs::ProtocolKind::kSlowPartial;
    const auto r = run_bellman_ford(WeightedGraph::fig8(), options);
    total_violations += r.handoff_violations;
  }
  EXPECT_GT(total_violations, 0u)
      << "slow memory never reordered the x/k hand-off across 12 seeds — "
         "jitter too tame to witness the PRAM/slow separation";
}

}  // namespace
}  // namespace pardsm::apps
