// Workload drivers: scripted clients and complete system runs.
//
// A ScriptedClient executes a fixed sequence of operations through one
// McsProcess, issuing the next operation when the previous completes
// (program order).  run_workload() wires distribution + protocol + script
// into a Simulator, runs to quiescence and returns the recorded history
// with all traffic statistics — the workhorse of the property tests and
// most benches.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mcs/factory.h"
#include "simnet/simulator.h"

namespace pardsm::mcs {

/// One scripted operation.
struct ScriptOp {
  enum class Kind : std::uint8_t { kRead, kWrite };
  Kind kind = Kind::kRead;
  VarId var = kNoVar;
  Value value = kBottom;  ///< written value (writes only)
  /// Delay before issuing this operation (think time).
  Duration delay{};

  static ScriptOp read(VarId x, Duration delay = {}) {
    return {Kind::kRead, x, kBottom, delay};
  }
  static ScriptOp write(VarId x, Value v, Duration delay = {}) {
    return {Kind::kWrite, x, v, delay};
  }
};

/// A per-process operation script.
using Script = std::vector<ScriptOp>;

/// Drives one McsProcess through its script (simulator runtime).
class ScriptedClient {
 public:
  ScriptedClient(McsProcess& process, Simulator& sim, Script script);

  /// Schedule the first operation at `start`.
  void start(TimePoint start);

  [[nodiscard]] bool done() const { return next_ >= script_.size(); }
  [[nodiscard]] const std::vector<Value>& read_results() const {
    return reads_;
  }

 private:
  void issue();

  McsProcess& process_;
  Simulator& sim_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
};

/// Workload generation parameters.
struct WorkloadSpec {
  std::size_t ops_per_process = 8;
  double read_fraction = 0.5;
  std::uint64_t seed = 1;
  Duration think_time{};  ///< fixed delay between a process's operations
};

/// Random scripts over the distribution: process i only touches X_i, and
/// every written value is globally unique (exact read-from resolution).
[[nodiscard]] std::vector<Script> make_random_scripts(
    const graph::Distribution& dist, const WorkloadSpec& spec);

/// Result of a full system run.
struct RunResult {
  hist::History history;
  ProcessTraffic total_traffic;
  std::vector<ProcessTraffic> per_process_traffic;
  /// observed_relevant[x] = processes that received metadata about x.
  std::vector<std::set<ProcessId>> observed_relevant;
  std::vector<ProtocolStats> protocol_stats;
  TimePoint finished_at{};
  std::uint64_t events = 0;
};

/// Options for run_workload.
struct RunOptions {
  std::uint64_t sim_seed = 1;
  ChannelOptions channel;
  std::unique_ptr<LatencyModel> latency;  ///< null = constant 1ms
};

/// Execute `scripts` against a fresh system of `kind` over `dist` on the
/// deterministic simulator; returns the recorded history and traffic.
[[nodiscard]] RunResult run_workload(ProtocolKind kind,
                                     const graph::Distribution& dist,
                                     const std::vector<Script>& scripts,
                                     RunOptions options = {});

/// Execute the same shape of run on the std::thread runtime (one OS thread
/// per MCS process, genuine preemptive parallelism).  Script think-times
/// are ignored; executions are non-deterministic by design — the property
/// tests assert that consistency holds regardless of interleaving.
/// `quiesce_timeout` bounds the wait for the system to drain.
[[nodiscard]] RunResult run_workload_threaded(
    ProtocolKind kind, const graph::Distribution& dist,
    const std::vector<Script>& scripts,
    std::chrono::milliseconds quiesce_timeout = std::chrono::milliseconds(
        10000));

}  // namespace pardsm::mcs
