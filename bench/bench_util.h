// Shared helpers for the reproduction benches.
//
// Every bench binary prints the rows/series of the paper artifact it
// regenerates (EXPERIMENTS.md records them), records the same rows as
// machine-readable results through a Harness, then runs its
// google-benchmark timings.
//
// Unified harness contract (bench_all relies on it):
//   --quick        skip the google-benchmark timing section
//   --json=PATH    where to write results (default BENCH_<name>.json)
//
// JSON schema (pardsm-bench-v4): one object per bench with a `results`
// array; each result row carries protocol, distribution, ops, messages,
// bytes, sim_time_ms, wall_ns (real time spent producing the row, 0 when
// not measured), ops_per_sec (derived, 0 when not applicable),
// max_rss_kb (process peak RSS observed at row completion, 0 when not
// sampled — a high-water mark, so only rows a bench runs in ascending
// working-set order give per-configuration numbers), the latency
// percentile columns p50_us / p99_us / p999_us plus censored_ops (all 0
// on rows that do not capture per-op latency; censored ops are issued-
// but-never-completed, see docs/WORKLOADS.md), plus bench-specific
// `extra` key/value pairs.  v4 is a strict superset of v3 — every v3
// field keeps its name and meaning, so v3 baselines still diff.
//
// All doubles are emitted through finite_or(): JSON has no inf/NaN, so a
// non-finite measurement becomes 0 ("unmeasured") instead of corrupting
// the document.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace pardsm::benchutil {

/// Section banner.
inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Fixed-width row printer: first column 28 chars, rest 14.
inline void row(const std::vector<std::string>& cells) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << std::left << std::setw(i == 0 ? 28 : 14) << cells[i];
  }
  std::cout << os.str() << '\n';
}

/// Format helpers.
inline std::string num(std::uint64_t v) { return std::to_string(v); }
inline std::string num(double v, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}
inline std::string yesno(bool b) { return b ? "yes" : "NO"; }

/// Wall-clock of a closure in milliseconds.
template <typename F>
double time_ms(F&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

/// Wall-clock of a closure in nanoseconds (for Result::wall_ns).
template <typename F>
std::uint64_t time_ns(F&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
          .count());
}

/// Peak resident set size of this process so far, in kilobytes (Linux
/// ru_maxrss units).  A high-water mark: it never decreases, so benches
/// that want per-configuration memory numbers must run configurations in
/// ascending working-set order and sample after each (bench_scale does).
inline std::uint64_t max_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss > 0 ? static_cast<std::uint64_t>(usage.ru_maxrss)
                             : 0;
}

/// Running wall-clock: construct before the work, read ns() after.
class WallTimer {
 public:
  WallTimer() : begin_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] std::uint64_t ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - begin_)
            .count());
  }

 private:
  std::chrono::steady_clock::time_point begin_;
};

/// One machine-readable result row.  Fields that do not apply to a bench
/// stay at their defaults ("-" / 0); bench-specific values go in `extra`.
struct Result {
  std::string label;         ///< row identifier (figure row, case name)
  std::string protocol = "-";
  std::string distribution = "-";
  std::uint64_t ops = 0;       ///< application operations in the run
  std::uint64_t messages = 0;  ///< protocol messages sent
  std::uint64_t bytes = 0;     ///< wire bytes sent (control + payload)
  double sim_time_ms = 0.0;    ///< simulated time to quiescence
  std::uint64_t wall_ns = 0;   ///< real time spent producing this row
  /// Process peak RSS at row completion (0 = not sampled).  High-water,
  /// not per-row: see max_rss_kb().
  std::uint64_t max_rss_kb = 0;
  /// Per-op latency percentiles in microseconds (0 = not captured; a
  /// censored percentile — rank beyond the completed samples — is also
  /// reported as 0 with the mass visible in censored_ops).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// Ops issued or due that never completed (dead channel, unrecovered
  /// crash); they are accounted above every percentile bucket.
  std::uint64_t censored_ops = 0;
  std::vector<std::pair<std::string, double>> extra;

  /// Application operations per wall-clock second (0 when unmeasured).
  /// Guarded: ops * 1e9 is computed in double (no uint64 overflow at any
  /// real count) and a non-finite ratio reports as unmeasured rather
  /// than leaking inf/NaN into the JSON.
  [[nodiscard]] double ops_per_sec() const {
    if (wall_ns == 0 || ops == 0) return 0.0;
    const double rate =
        static_cast<double>(ops) * 1e9 / static_cast<double>(wall_ns);
    return std::isfinite(rate) ? rate : 0.0;
  }
};

/// JSON-safe double: JSON cannot carry inf/NaN, so non-finite values are
/// written as `fallback` (0 = "unmeasured") instead of breaking parsers.
inline double finite_or(double v, double fallback = 0.0) {
  return std::isfinite(v) ? v : fallback;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Per-binary bench harness: strips the unified flags from argv (so
/// benchmark::Initialize never sees them), collects Result rows, and
/// writes BENCH_<name>.json on write_json().
class Harness {
 public:
  Harness(int* argc, char** argv, std::string name)
      : name_(std::move(name)), json_path_("BENCH_" + name_ + ".json") {
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        quick_ = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argv[kept] = nullptr;
    *argc = kept;
  }

  [[nodiscard]] bool quick() const { return quick_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  void record(Result r) { results_.push_back(std::move(r)); }

  /// Write the collected rows; returns a process exit code.
  [[nodiscard]] int write_json() const {
    std::ofstream os(json_path_);
    if (!os) {
      std::cerr << "bench " << name_ << ": cannot write " << json_path_
                << '\n';
      return 1;
    }
    os << "    {\n      \"bench\": \"" << json_escape(name_)
       << "\",\n      \"schema\": \"pardsm-bench-v4\",\n      \"results\": [\n";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      os << "        {\"label\": \"" << json_escape(r.label)
         << "\", \"protocol\": \"" << json_escape(r.protocol)
         << "\", \"distribution\": \"" << json_escape(r.distribution)
         << "\", \"ops\": " << r.ops << ", \"messages\": " << r.messages
         << ", \"bytes\": " << r.bytes << ", \"sim_time_ms\": " << std::fixed
         << std::setprecision(3) << finite_or(r.sim_time_ms)
         << ", \"wall_ns\": " << r.wall_ns << ", \"ops_per_sec\": "
         << std::fixed << std::setprecision(1) << r.ops_per_sec()
         << ", \"max_rss_kb\": " << r.max_rss_kb << ", \"p50_us\": "
         << std::fixed << std::setprecision(3) << finite_or(r.p50_us)
         << ", \"p99_us\": " << finite_or(r.p99_us) << ", \"p999_us\": "
         << finite_or(r.p999_us) << ", \"censored_ops\": " << r.censored_ops;
      for (const auto& [key, value] : r.extra) {
        os << ", \"" << json_escape(key) << "\": " << std::fixed
           << std::setprecision(3) << finite_or(value);
      }
      os << "}";
      if (i + 1 < results_.size()) os << ",";
      os << "\n";
    }
    os << "      ]\n    }\n";
    std::cout << "wrote " << json_path_ << " (" << results_.size()
              << " results)\n";
    return 0;
  }

 private:
  std::string name_;
  std::string json_path_;
  bool quick_ = false;
  std::vector<Result> results_;
};

}  // namespace pardsm::benchutil
