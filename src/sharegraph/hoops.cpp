#include "sharegraph/hoops.h"

#include <algorithm>

#include "simnet/check.h"

namespace pardsm::graph {

namespace {

/// True iff the edge carries a label other than x (hoop steps must share
/// a variable different from x) — O(1) off the per-edge summary.
bool edge_usable(const ShareGraph::EdgeSummary& s, VarId x) {
  return s.shared_count >= 2 || (s.shared_count == 1 && s.only_shared != x);
}

void dfs_hoops(const ShareGraph& sg, VarId x,
               const std::vector<bool>& in_clique, std::vector<ProcessId>& path,
               std::vector<bool>& visited, HoopEnumeration& out,
               std::size_t limit) {
  if (out.hoops.size() >= limit) {
    out.truncated = true;
    return;
  }
  ++out.dfs_steps;
  const ProcessId v = path.back();
  const auto& nbrs = sg.neighbours(v);
  const auto& summaries = sg.edge_summaries(v);
  for (std::size_t wi = 0; wi < nbrs.size(); ++wi) {
    const ProcessId w = nbrs[wi];
    if (out.hoops.size() >= limit) {
      out.truncated = true;
      return;
    }
    if (!edge_usable(summaries[wi], x)) continue;
    if (in_clique[static_cast<std::size_t>(w)]) {
      // Complete a hoop if w is a clique member distinct from the start and
      // the path has at least one intermediate.
      if (w != path.front() && path.size() >= 2) {
        Hoop hoop = path;
        hoop.push_back(w);
        if (hoop.front() <= hoop.back()) {  // canonical direction only
          out.hoops.push_back(std::move(hoop));
        }
      }
      continue;
    }
    if (visited[static_cast<std::size_t>(w)]) continue;
    visited[static_cast<std::size_t>(w)] = true;
    path.push_back(w);
    dfs_hoops(sg, x, in_clique, path, visited, out, limit);
    path.pop_back();
    visited[static_cast<std::size_t>(w)] = false;
  }
}

}  // namespace

HoopEnumeration enumerate_hoops(const ShareGraph& sg, VarId x,
                                std::size_t limit) {
  HoopEnumeration out;
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  for (ProcessId a : sg.clique(x)) {
    std::vector<bool> visited(n, false);
    visited[static_cast<std::size_t>(a)] = true;
    std::vector<ProcessId> path{a};
    dfs_hoops(sg, x, in_clique, path, visited, out, limit);
    if (out.truncated) break;
  }
  // Deterministic order.
  std::sort(out.hoops.begin(), out.hoops.end());
  out.hoops.erase(std::unique(out.hoops.begin(), out.hoops.end()),
                  out.hoops.end());
  return out;
}

namespace {

/// Unit-capacity max-flow check: are there two vertex-disjoint paths
/// (disjoint except at v) from v to two distinct members of C(x), with all
/// intermediate vertices outside C(x) and all edges labelled ≠ x?
///
/// Standard vertex-splitting construction: every non-clique vertex u ≠ v
/// becomes u_in -> u_out with capacity 1; clique vertices connect directly
/// to the sink with capacity 1 (so two paths must end at distinct clique
/// members); v is the source with capacity 2.
///
/// The flow network is identical for every candidate v of the same
/// variable except for the capacity through v itself, so it is built ONCE
/// per (sg, x) and reused: each query bumps v's internal capacity, runs at
/// most two augmentations and restores the capacities in place.  This
/// turns hoop_members from O(candidates · graph-build) allocations into a
/// single build — the dominant cost of StaticRelevance::analyze on large
/// random topologies.
class DisjointPathFinder {
 public:
  DisjointPathFinder(const ShareGraph& sg, VarId x,
                     const std::vector<bool>& in_clique) {
    const std::size_t n = sg.process_count();
    // Node ids: u_in = 2u, u_out = 2u+1, sink = 2n.
    sink_ = static_cast<int>(2 * n);
    adj_.assign(2 * n + 1, {});
    internal_edge_.assign(n, -1);
    for (std::size_t u = 0; u < n; ++u) {
      const auto pu = static_cast<ProcessId>(u);
      internal_edge_[u] =
          static_cast<int>(adj_[2 * u].size());  // in -> out edge index
      if (in_clique[u]) {
        // Clique member: in == out for our purposes; capacity 1 to the
        // sink.
        add_edge(static_cast<int>(2 * u), static_cast<int>(2 * u + 1), 1);
        add_edge(static_cast<int>(2 * u + 1), sink_, 1);
      } else {
        add_edge(static_cast<int>(2 * u), static_cast<int>(2 * u + 1), 1);
      }
      const auto& nbrs = sg.neighbours(pu);
      const auto& summaries = sg.edge_summaries(pu);
      for (std::size_t wi = 0; wi < nbrs.size(); ++wi) {
        if (!edge_usable(summaries[wi], x)) continue;
        // Directed u_out -> w_in; the reverse direction is added when w is
        // processed.  Intermediates must be non-clique, but edges into
        // clique members are allowed (they terminate a path).  Candidates
        // are never clique members, so clique vertices get no out-edges.
        if (in_clique[u]) continue;
        add_edge(static_cast<int>(2 * u + 1),
                 static_cast<int>(2 * static_cast<std::size_t>(nbrs[wi])), 1);
      }
    }
    prev_node_.resize(adj_.size());
    prev_edge_.resize(adj_.size());
    mark_.assign(adj_.size(), 0);
  }

  /// Two vertex-disjoint v→C(x) paths?  `v` must be a non-clique vertex.
  bool two_disjoint_from(ProcessId v) {
    const auto vi = static_cast<std::size_t>(v);
    adj_[2 * vi][static_cast<std::size_t>(internal_edge_[vi])].cap = 2;
    const int source = static_cast<int>(2 * vi);  // v_in
    touched_.clear();
    int flow = 0;
    while (flow < 2 && augment(source)) ++flow;
    // Undo exactly the edges the augmenting paths pushed flow through —
    // O(path length), not O(E) — then re-pin v's internal capacity.
    for (const auto& [node, edge] : touched_) {
      Edge& e = adj_[static_cast<std::size_t>(node)]
                    [static_cast<std::size_t>(edge)];
      e.cap += 1;
      adj_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap -= 1;
    }
    adj_[2 * vi][static_cast<std::size_t>(internal_edge_[vi])].cap = 1;
    return flow >= 2;
  }

 private:
  struct Edge {
    int to;
    int cap;
    int rev;  // index of reverse edge in adj[to]
  };

  void add_edge(int a, int b, int cap) {
    adj_[static_cast<std::size_t>(a)].push_back(
        {b, cap, static_cast<int>(adj_[static_cast<std::size_t>(b)].size())});
    adj_[static_cast<std::size_t>(b)].push_back(
        {a, 0,
         static_cast<int>(adj_[static_cast<std::size_t>(a)].size()) - 1});
  }

  /// One BFS augmenting step; true if a source→sink path was found.
  /// Visited state is an epoch stamp, so starting a BFS is O(1), not a
  /// pair of O(V) fills.
  bool augment(int source) {
    const std::uint64_t epoch = ++epoch_;
    bfs_.clear();
    bfs_.push_back(source);
    mark_[static_cast<std::size_t>(source)] = epoch;
    prev_node_[static_cast<std::size_t>(source)] = source;
    for (std::size_t head = 0;
         head < bfs_.size() && mark_[static_cast<std::size_t>(sink_)] != epoch;
         ++head) {
      const int u = bfs_[head];
      const auto& edges = adj_[static_cast<std::size_t>(u)];
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].cap <= 0) continue;
        const int to = edges[e].to;
        if (mark_[static_cast<std::size_t>(to)] == epoch) continue;
        mark_[static_cast<std::size_t>(to)] = epoch;
        prev_node_[static_cast<std::size_t>(to)] = u;
        prev_edge_[static_cast<std::size_t>(to)] = static_cast<int>(e);
        bfs_.push_back(to);
      }
    }
    if (mark_[static_cast<std::size_t>(sink_)] != epoch) return false;
    int u = sink_;
    while (u != source) {
      const int pu = prev_node_[static_cast<std::size_t>(u)];
      const int pe = prev_edge_[static_cast<std::size_t>(u)];
      auto& e = adj_[static_cast<std::size_t>(pu)][static_cast<std::size_t>(pe)];
      e.cap -= 1;
      adj_[static_cast<std::size_t>(u)][static_cast<std::size_t>(e.rev)].cap +=
          1;
      touched_.push_back({pu, pe});
      u = pu;
    }
    return true;
  }

  int sink_ = 0;
  std::vector<std::vector<Edge>> adj_;
  std::vector<int> internal_edge_;  ///< per vertex: index of in→out edge
  std::vector<int> prev_node_;
  std::vector<int> prev_edge_;
  std::vector<std::uint64_t> mark_;  ///< BFS visited epoch per node
  std::uint64_t epoch_ = 0;
  std::vector<int> bfs_;
  std::vector<std::pair<int, int>> touched_;  ///< (node, edge) with flow
};

}  // namespace

bool hoop_exists(const ShareGraph& sg, VarId x) {
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  // A hoop with one intermediate exists iff some non-clique vertex has two
  // disjoint paths to distinct clique members; checking every non-clique
  // vertex is sufficient (any hoop has at least one intermediate).
  DisjointPathFinder finder(sg, x, in_clique);
  for (std::size_t v = 0; v < n; ++v) {
    if (in_clique[v]) continue;
    if (finder.two_disjoint_from(static_cast<ProcessId>(v))) {
      return true;
    }
  }
  return false;
}

std::set<ProcessId> hoop_members(const ShareGraph& sg, VarId x) {
  const std::size_t n = sg.process_count();
  std::vector<bool> in_clique(n, false);
  for (ProcessId p : sg.clique(x)) {
    in_clique[static_cast<std::size_t>(p)] = true;
  }
  std::set<ProcessId> members;
  DisjointPathFinder finder(sg, x, in_clique);
  for (std::size_t v = 0; v < n; ++v) {
    if (in_clique[v]) continue;
    if (finder.two_disjoint_from(static_cast<ProcessId>(v))) {
      members.insert(static_cast<ProcessId>(v));
    }
  }
  return members;
}

std::set<ProcessId> x_relevant(const ShareGraph& sg, VarId x) {
  std::set<ProcessId> out = hoop_members(sg, x);
  for (ProcessId p : sg.clique(x)) out.insert(p);
  return out;
}

std::vector<std::set<ProcessId>> all_relevant_sets(const ShareGraph& sg) {
  std::vector<std::set<ProcessId>> out;
  out.reserve(sg.var_count());
  for (std::size_t x = 0; x < sg.var_count(); ++x) {
    out.push_back(x_relevant(sg, static_cast<VarId>(x)));
  }
  return out;
}

RelevanceSummary summarize_relevance(const ShareGraph& sg) {
  RelevanceSummary s;
  for (std::size_t x = 0; x < sg.var_count(); ++x) {
    const auto xv = static_cast<VarId>(x);
    const auto relevant = x_relevant(sg, xv);
    const auto& clique = sg.clique(xv);
    s.total_relevant += relevant.size();
    s.total_replicas += clique.size();
    if (relevant.size() > clique.size()) ++s.vars_with_hoops;
  }
  return s;
}

}  // namespace pardsm::graph
