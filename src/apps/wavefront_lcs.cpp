#include "apps/wavefront_lcs.h"

#include <algorithm>

#include "mcs/factory.h"
#include "sharegraph/hoops.h"
#include "simnet/check.h"

namespace pardsm::apps {

std::size_t lcs_reference(const std::string& s, const std::string& t) {
  std::vector<std::vector<std::size_t>> dp(
      s.size() + 1, std::vector<std::size_t>(t.size() + 1, 0));
  for (std::size_t i = 1; i <= s.size(); ++i) {
    for (std::size_t j = 1; j <= t.size(); ++j) {
      dp[i][j] = (s[i - 1] == t[j - 1])
                     ? dp[i - 1][j - 1] + 1
                     : std::max(dp[i - 1][j], dp[i][j - 1]);
    }
  }
  return dp[s.size()][t.size()];
}

namespace {

/// Cell (r, j) of the (|s|+1)×(|t|+1) table = r*(cols) + j; counters
/// follow.  Process p (0-based) writes row p+1.
struct Layout {
  std::size_t rows = 0;  // |s| + 1
  std::size_t cols = 0;  // |t| + 1

  [[nodiscard]] VarId cell(std::size_t r, std::size_t j) const {
    return static_cast<VarId>(r * cols + j);
  }
  [[nodiscard]] VarId counter(std::size_t p) const {
    return static_cast<VarId>(rows * cols + p);
  }
  [[nodiscard]] std::size_t var_count() const {
    return rows * cols + (rows - 1);
  }
};

graph::Distribution make_distribution(const Layout& lay) {
  graph::Distribution d;
  d.name = "lcs-" + std::to_string(lay.rows - 1) + "x" +
           std::to_string(lay.cols - 1);
  d.var_count = lay.var_count();
  const std::size_t procs = lay.rows - 1;
  d.per_process.resize(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    auto& xs = d.per_process[p];
    for (std::size_t j = 0; j < lay.cols; ++j) {
      xs.push_back(lay.cell(p + 1, j));        // own row
      if (p > 0) xs.push_back(lay.cell(p, j)); // predecessor's row
    }
    xs.push_back(lay.counter(p));
    if (p > 0) xs.push_back(lay.counter(p - 1));
    std::sort(xs.begin(), xs.end());
  }
  return d;
}

class RowWorker {
 public:
  RowWorker(std::size_t p, const Layout& lay, const std::string& s,
            const std::string& t, mcs::McsProcess& mcs, Simulator& sim,
            Duration poll)
      : p_(p), lay_(lay), s_(s), t_(t), mcs_(mcs), sim_(sim), poll_(poll) {
    row_.assign(lay_.cols, 0);
    prev_.assign(lay_.cols, 0);
  }

  void start() {
    // Column 0 boundary: write cell (p+1, 0) = 0 then counter = 1.
    mcs_.write(lay_.cell(p_ + 1, 0), 0, [this] {
      mcs_.write(lay_.counter(p_), 1, [this] { step(1); });
    });
  }

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] std::int64_t last_cell() const {
    return row_[lay_.cols - 1];
  }

 private:
  void step(std::size_t j) {
    if (j == lay_.cols) {
      done_ = true;
      return;
    }
    if (p_ == 0) {
      // Row 0 of the table is all zeros; no reads needed.
      compute(j, 0, 0);
      return;
    }
    // Need predecessor cells (p, j-1) and (p, j): wait for c_{p-1} > j.
    mcs_.read(lay_.counter(p_ - 1), [this, j](Value c) {
      if (c == kBottom || c < static_cast<Value>(j + 1)) {
        sim_.schedule_at(sim_.now() + poll_, [this, j] { step(j); });
        return;
      }
      mcs_.read(lay_.cell(p_, j - 1), [this, j](Value diag) {
        mcs_.read(lay_.cell(p_, j), [this, j, diag](Value up) {
          PARDSM_CHECK(diag != kBottom && up != kBottom,
                       "LCS read ⊥ after counter hand-off");
          compute(j, diag, up);
        });
      });
    });
  }

  void compute(std::size_t j, Value diag, Value up) {
    const Value left = row_[j - 1];
    const Value value = (s_[p_] == t_[j - 1]) ? diag + 1
                                              : std::max(up, left);
    row_[j] = value;
    mcs_.write(lay_.cell(p_ + 1, j), value, [this, j] {
      mcs_.write(lay_.counter(p_), static_cast<Value>(j + 1),
                 [this, j] { step(j + 1); });
    });
  }

  std::size_t p_;
  Layout lay_;
  const std::string& s_;
  const std::string& t_;
  mcs::McsProcess& mcs_;
  Simulator& sim_;
  Duration poll_;
  std::vector<Value> row_;
  std::vector<Value> prev_;
  bool done_ = false;
};

}  // namespace

LcsResult run_wavefront_lcs(const std::string& s, const std::string& t,
                            const LcsOptions& options) {
  PARDSM_CHECK(!s.empty() && !t.empty(), "LCS needs non-empty strings");
  Layout lay{s.size() + 1, t.size() + 1};
  const auto dist = make_distribution(lay);

  // The app's distribution is hoop-free by construction; report it.
  const graph::ShareGraph sg(dist);
  bool hoop_free = true;
  for (std::size_t x = 0; x < sg.var_count() && hoop_free; ++x) {
    if (graph::hoop_exists(sg, static_cast<VarId>(x))) hoop_free = false;
  }

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.latency = std::make_unique<UniformLatency>(millis(1), millis(3));
  Simulator sim(std::move(sim_options));

  mcs::HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto procs = mcs::make_processes(options.protocol, dist, recorder);
  for (auto& proc : procs) {
    sim.add_endpoint(proc.get());
    proc->attach(sim);
  }

  std::vector<std::unique_ptr<RowWorker>> workers;
  for (std::size_t p = 0; p < s.size(); ++p) {
    workers.push_back(std::make_unique<RowWorker>(p, lay, s, t, *procs[p],
                                                  sim, options.poll));
  }
  for (auto& w : workers) {
    sim.schedule_at(kTimeZero, [worker = w.get()] { worker->start(); });
  }
  sim.run();

  LcsResult result;
  for (const auto& w : workers) {
    PARDSM_CHECK(w->done(), "LCS row worker did not finish");
  }
  result.length = static_cast<std::size_t>(workers.back()->last_cell());
  result.matches_reference = result.length == lcs_reference(s, t);
  result.total_traffic = sim.stats().total();
  result.finished_at = sim.now();
  result.hoop_free = hoop_free;
  return result;
}

}  // namespace pardsm::apps
