// Discrete-event priority queue with pooled typed events.
//
// Events are ordered by (time, insertion sequence), which makes simulation
// runs fully deterministic: ties are broken by insertion order, never by
// container internals.
//
// The hot path of every benchmark is schedule-deliver/pop, so the queue is
// engineered to be allocation-free per event in steady state:
//
//   * Events are *typed* (Deliver / Timer / Closure) instead of captured
//     std::function closures; a delivery carries its Message in place and
//     a timer is two integers.  Closures remain only for the rare driver-
//     injection path (ScriptedClient, tests).
//   * Event payloads live in a free-list pool of stable slots (a deque, so
//     scheduling from inside a firing handler never invalidates anything).
//     The pool grows to the peak queue depth once and is then reused.
//   * The priority queue itself is an explicit 4-ary heap over 24-byte
//     (when, seq, slot) entries — sift operations move handles (hole
//     insertion, one final store instead of swap chains), never the event
//     payload, and popping detaches the payload with a move.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "simnet/check.h"
#include "simnet/ids.h"
#include "simnet/message.h"
#include "simnet/sim_time.h"

namespace pardsm {

/// A scheduled simulation event.
struct Event {
  enum class Type : std::uint8_t { kClosure, kDeliver, kTimer };

  Type type = Type::kClosure;
  TimePoint when{};
  std::uint64_t seq = 0;      ///< tie-breaker: insertion order
  std::uint32_t slot = 0;     ///< pool slot (for EventQueue::release)

  /// kDeliver payload: the message, stored in place (no indirection).
  Message msg;

  /// kTimer payload.
  ProcessId timer_who = kNoProcess;
  std::uint64_t timer_tag = 0;

  /// kClosure payload.
  std::function<void()> fire;
};

/// Min-heap of pooled events keyed by (when, seq).
class EventQueue {
 public:
  /// Schedule `fn` to run at absolute time `when` (driver/test path).
  void schedule(TimePoint when, std::function<void()> fn);

  /// Schedule delivery of `msg` at `when` (allocation-free in steady state).
  void schedule_deliver(TimePoint when, Message msg);

  /// Schedule a timer callback for process `who` at `when`.
  void schedule_timer(TimePoint when, ProcessId who, std::uint64_t tag);

  /// True if no events remain.
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the next event; only valid when !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Remove and return the next event.  Only valid when !empty().  The
  /// returned Event owns its payload; its pool slot is recycled
  /// immediately.
  Event pop();

  /// In-place variant of pop(): removes the next event from the heap but
  /// leaves the payload in its pooled slot, returning a reference that
  /// stays valid across schedule_* calls (slots are deque-stable and this
  /// one is not recycled until release()).  Saves the payload move on the
  /// hottest path.
  Event& pop_ref();

  /// Recycle the slot of an event obtained via pop_ref().
  void release(Event& e);

  /// Total number of events ever scheduled (diagnostics).
  [[nodiscard]] std::uint64_t scheduled_total() const { return next_seq_; }

  /// Pool slots ever allocated (== peak queue depth; tests assert reuse).
  [[nodiscard]] std::size_t pool_slots() const { return pool_.size(); }

  /// Slot handles are 32-bit (they ride in every 24-byte heap entry), so
  /// a pool asked to grow past 2^32 slots — four billion *simultaneously
  /// pending* events — must fail loudly instead of wrapping the new
  /// slot's index into an alias of slot 0.  Public static so the wrap
  /// regression test can probe the boundary without four billion live
  /// events (the same seeded-harness discipline as
  /// SmallVec::next_capacity).
  [[nodiscard]] static std::uint32_t checked_slot(std::size_t pool_size) {
    PARDSM_CHECK(pool_size <= 0xFFFF'FFFFULL,
                 "event pool exceeds 2^32 slots");
    return static_cast<std::uint32_t>(pool_size);
  }

 private:
  /// What the heap actually stores and moves.
  struct HeapEntry {
    TimePoint when{};
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// 4-ary: half the levels of a binary heap, and the four children of a
  /// node share two cache lines — pop-heavy simulation loops spend most
  /// of their heap time in sift_down, which this roughly halves.  The
  /// comparator's (when, seq) order is total (seq is unique), so the pop
  /// sequence — and with it simulation determinism — is independent of
  /// the heap's shape.
  static constexpr std::size_t kArity = 4;

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  /// Take a slot from the free list (growing the pool if exhausted), stamp
  /// (type, when, seq) and push its heap entry.  Caller fills the payload.
  Event& alloc(TimePoint when, Event::Type type);

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::deque<Event> pool_;            ///< stable payload slots
  std::vector<std::uint32_t> free_;   ///< recycled slot indices
  std::vector<HeapEntry> heap_;       ///< explicit binary min-heap
  std::uint64_t next_seq_ = 0;
};

}  // namespace pardsm
