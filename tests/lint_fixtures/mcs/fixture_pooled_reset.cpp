// pardsm_lint fixture: R3 (pooled-reset) seeded violations.  LeakyBody's
// `stale` member is the bug class from docs/HOTPATH.md: reset() keeps the
// slot constructed, so a recycled body re-sends the previous message's
// value.  Line numbers are pinned by test_lint.cpp.
struct MessageBody {};

struct LeakyBody final : MessageBody {
  int cleared = 0;
  int stale = 0;
  int positional = 0;  // pardsm-lint: overwritten-by-creator
  int named = 0;

  // pardsm-lint: overwritten-by-creator(named)
  void reset() { cleared = 0; }
};

struct SuppressedBody final : MessageBody {
  int silenced = 0;  // pardsm-lint: allow(pooled-reset)

  void reset() {}
};

struct NoResetBody final : MessageBody {
  // No reset(): the pool destroys and re-constructs this type on recycle,
  // so stale members are impossible and the rule stays quiet.
  int anything = 0;
};

struct NotABody {
  int whatever = 0;
  void reset() {}
};
