// Builders for the paper's order relations over a history's operations.
//
// Every builder returns a Relation over global op indices (size
// History::size()).  Names follow the paper:
//
//   program_order          7->i   total order per process (Section 2)
//   read_from_order        7->ro  write -> read that returned it
//   causality_order        7->co  closure(program ∪ read-from)   [Ahamad]
//   lazy_program_order     ->li   Definition 5
//   lazy_causality_order   7->lco Definition 6
//   lazy_writes_before     ->lwb  Definition 8
//   lazy_semi_causal_order 7->lsc Definition 9
//   pram_relation          7->pram Definition 11 (acyclic, NOT transitive)
//   slow_relation          per-variable program order ∪ read-from (Slow/[16])
//
// Interpretation note (documented in DESIGN.md): Definition 5 as printed
// orders (read, read-same-var), (read, any-write) and (write, same-var op)
// pairs.  The paper's own walk-throughs of Figures 4 and 6, however, use
// orderings of two writes on *different* variables with no intervening
// operation (w1(x)a ->li w1(y)b; w2(y)e ->li w2(z)c).  Those analyses are
// only derivable if a write is never permuted with a *later write*.  We
// therefore provide both readings and default to the one that makes the
// paper's figures internally consistent:
//
//   kPaperConsistent  adds (write, later write on any variable)
//   kLiteral          exactly the three clauses printed in Definition 5
#pragma once

#include "history/history.h"
#include "history/relation.h"

namespace pardsm::hist {

/// Which reading of Definition 5 (lazy program order) to use.
enum class LazyMode {
  kPaperConsistent,  ///< writes stay ordered with later writes (default)
  kLiteral,          ///< exactly the clauses printed in the report
};

/// 7->i for all processes: o1 before o2 in the same h_i.
[[nodiscard]] Relation program_order(const History& h);

/// 7->ro: source write -> read, from History::resolve_read_from().
[[nodiscard]] Relation read_from_order(const History& h);

/// 7->co: transitive closure of program ∪ read-from.
[[nodiscard]] Relation causality_order(const History& h);

/// ->li per Definition 5 (transitively closed).
[[nodiscard]] Relation lazy_program_order(
    const History& h, LazyMode mode = LazyMode::kPaperConsistent);

/// 7->lco: closure(lazy program ∪ read-from), Definition 6.
[[nodiscard]] Relation lazy_causality_order(
    const History& h, LazyMode mode = LazyMode::kPaperConsistent);

/// ->lwb per Definition 8: w_i(x)v ->lwb r_j(y)u when some o' = w_i(y)u
/// satisfies w_i(x)v ->li o' and r_j(y)u reads from o'.
[[nodiscard]] Relation lazy_writes_before(
    const History& h, LazyMode mode = LazyMode::kPaperConsistent);

/// 7->lsc: closure(lazy program ∪ lazy writes-before), Definition 9.
[[nodiscard]] Relation lazy_semi_causal_order(
    const History& h, LazyMode mode = LazyMode::kPaperConsistent);

/// 7->pram per Definition 11: program order ∪ read-from, *not* closed.
/// (A serialization respects a relation iff it respects its closure, so
/// checkers may close it; the relation itself is returned raw.)
[[nodiscard]] Relation pram_relation(const History& h);

/// Slow memory relation: program order restricted to same-variable pairs,
/// union read-from.  This is the classical "slow memory" [Hutto&Ahamad 90]
/// the paper cites via Sinha [16]; included as the weaker-than-PRAM rung.
[[nodiscard]] Relation slow_relation(const History& h);

/// Concurrency test: neither (a,b) nor (b,a) in `r`.
[[nodiscard]] bool concurrent(const Relation& r, OpIndex a, OpIndex b);

}  // namespace pardsm::hist
