#include "mcs/protocol.h"

namespace pardsm::mcs {

const char* to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kAtomicHome:
      return "atomic-home";
    case ProtocolKind::kSequencerSC:
      return "sequencer-sc";
    case ProtocolKind::kCausalFull:
      return "causal-full";
    case ProtocolKind::kCausalPartialNaive:
      return "causal-partial-naive";
    case ProtocolKind::kCausalPartialAdHoc:
      return "causal-partial-adhoc";
    case ProtocolKind::kPramPartial:
      return "pram-partial";
    case ProtocolKind::kSlowPartial:
      return "slow-partial";
    case ProtocolKind::kCachePartial:
      return "cache-partial";
    case ProtocolKind::kProcessorPartial:
      return "processor-partial";
  }
  return "?";
}

const std::vector<ProtocolKind>& all_protocols() {
  static const std::vector<ProtocolKind> kAll = {
      ProtocolKind::kAtomicHome,         ProtocolKind::kSequencerSC,
      ProtocolKind::kCausalFull,         ProtocolKind::kCausalPartialNaive,
      ProtocolKind::kCausalPartialAdHoc, ProtocolKind::kPramPartial,
      ProtocolKind::kSlowPartial,        ProtocolKind::kCachePartial,
      ProtocolKind::kProcessorPartial,
  };
  return kAll;
}

GuaranteeLevel guarantee_of(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kAtomicHome:
      return GuaranteeLevel::kAtomic;
    case ProtocolKind::kSequencerSC:
      return GuaranteeLevel::kSequential;
    case ProtocolKind::kCausalFull:
    case ProtocolKind::kCausalPartialNaive:
    case ProtocolKind::kCausalPartialAdHoc:
      return GuaranteeLevel::kCausal;
    case ProtocolKind::kPramPartial:
      return GuaranteeLevel::kPram;
    case ProtocolKind::kSlowPartial:
      return GuaranteeLevel::kSlow;
    case ProtocolKind::kCachePartial:
      return GuaranteeLevel::kCache;
    case ProtocolKind::kProcessorPartial:
      return GuaranteeLevel::kProcessor;
  }
  return GuaranteeLevel::kSlow;
}

}  // namespace pardsm::mcs
