#include "mcs/atomic_home.h"

#include <algorithm>

#include "simnet/wire.h"

namespace pardsm::mcs {

struct AtomicReadRequest final : MessageBody {
  VarId x = kNoVar;
  std::uint64_t rpc = 0;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAtomicReadRequest;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.u64(rpc);
  }
};

struct AtomicReadReply final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId source{};
  std::uint64_t rpc = 0;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAtomicReadReply;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, source);
    w.u64(rpc);
  }
};

struct AtomicWriteRequest final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  std::uint64_t rpc = 0;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAtomicWriteRequest;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    w.u64(rpc);
  }
};

struct AtomicWriteAck final : MessageBody {
  VarId x = kNoVar;
  std::uint64_t rpc = 0;

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAtomicWriteAck;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.u64(rpc);
  }
};

struct AtomicRefresh final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kAtomicRefresh;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
  }
};

namespace {

const wire::BodyRegistrar atomic_rreq_codec(
    wire::kAtomicReadRequest, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AtomicReadRequest>();
      b->x = r.i32();
      b->rpc = r.u64();
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar atomic_rrsp_codec(
    wire::kAtomicReadReply, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AtomicReadReply>();
      b->x = r.i32();
      b->v = r.i64();
      b->source = wire::get_write_id(r);
      b->rpc = r.u64();
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar atomic_wreq_codec(
    wire::kAtomicWriteRequest, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AtomicWriteRequest>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->rpc = r.u64();
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar atomic_wack_codec(
    wire::kAtomicWriteAck, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AtomicWriteAck>();
      b->x = r.i32();
      b->rpc = r.u64();
      return BodyRef::adopt(b);
    });
const wire::BodyRegistrar atomic_refresh_codec(
    wire::kAtomicRefresh, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<AtomicRefresh>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      return BodyRef::adopt(b);
    });

/// Message kinds, interned once so the send path never hits the table.
const KindId kReadReqKind("RREQ");
const KindId kReadRspKind("RRSP");
const KindId kWriteReqKind("WREQ");
const KindId kWriteAckKind("WACK");
const KindId kRefreshKind("RFSH");

}  // namespace

AtomicHomeProcess::AtomicHomeProcess(ProcessId self,
                                     const graph::Distribution& dist,
                                     HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder) {}

void AtomicHomeProcess::on_attach() {
  read_req_pool_ = &arena().pool<AtomicReadRequest>();
  read_reply_pool_ = &arena().pool<AtomicReadReply>();
  write_req_pool_ = &arena().pool<AtomicWriteRequest>();
  write_ack_pool_ = &arena().pool<AtomicWriteAck>();
  refresh_pool_ = &arena().pool<AtomicRefresh>();
}

ProcessId AtomicHomeProcess::home_of(VarId x) const {
  const auto& replicas = replicas_of(x);
  PARDSM_CHECK(!replicas.empty(), "variable with no replicas");
  return replicas.front();
}

void AtomicHomeProcess::read(VarId x, ReadCallback done) {
  PARDSM_CHECK(replicates(x), "application read outside X_i");
  const ProcessId home = home_of(x);
  if (home == id()) {
    // The authoritative copy is local: linearization point is here.
    local_read(x, done);
    return;
  }
  ++mutable_stats().remote_reads;
  const std::uint64_t rpc = next_rpc_++;
  pending_reads_[rpc] = PendingRead{std::move(done), now()};

  auto* body = read_req_pool_->create();
  body->x = x;
  body->rpc = rpc;
  MessageMeta meta;
  meta.kind = kReadReqKind;
  meta.control_bytes = 8 + 8;
  meta.vars_mentioned = {x};
  emit_to(home, BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
}

void AtomicHomeProcess::write(VarId x, Value v, WriteCallback done) {
  PARDSM_CHECK(replicates(x), "application write outside X_i");
  const ProcessId home = home_of(x);
  const WriteId wid{id(), next_write_seq_++};
  if (home == id()) {
    const TimePoint t = now();
    mutable_store().put(x, v, wid);
    recorder().record_write(id(), x, v, wid, t, t);
    ++mutable_stats().writes;
    // Refresh the standby replicas.
    auto* refresh = refresh_pool_->create();
    refresh->x = x;
    refresh->v = v;
    refresh->id = wid;
    SendPlan plan;
    plan.body = BodyRef::adopt(refresh);
    plan.meta.kind = kRefreshKind;
    plan.meta.control_bytes = 16 + 8;
    plan.meta.payload_bytes = 8;
    plan.meta.vars_mentioned = {x};
    for (ProcessId q : replicas_of(x)) {
      if (q != id()) plan.to.push_back(q);
    }
    emit(std::move(plan));
    done();
    return;
  }
  ++mutable_stats().writes;
  const std::uint64_t rpc = next_rpc_++;
  PendingWrite pending;
  pending.x = x;
  pending.v = v;
  pending.id = wid;
  pending.done = std::move(done);
  pending.invoked = now();
  pending_writes_[rpc] = std::move(pending);

  auto* body = write_req_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->rpc = rpc;
  MessageMeta meta;
  meta.kind = kWriteReqKind;
  meta.control_bytes = 16 + 8 + 8;
  meta.payload_bytes = 8;
  meta.vars_mentioned = {x};
  emit_to(home, BodyRef::adopt(body), std::move(meta), /*urgent=*/true);
}

void AtomicHomeProcess::handle_message(const Message& m) {
  if (const auto* rr = m.try_as<AtomicReadRequest>()) {
    PARDSM_CHECK(home_of(rr->x) == id(), "read request at non-home");
    const Stored& s = mutable_store().get(rr->x);
    auto* reply = read_reply_pool_->create();
    reply->x = rr->x;
    reply->v = s.value;
    reply->source = s.source;
    reply->rpc = rr->rpc;
    MessageMeta meta;
    meta.kind = kReadRspKind;
    meta.control_bytes = 16 + 8 + 8;
    meta.payload_bytes = 8;
    meta.vars_mentioned = {rr->x};
    emit_to(m.from, BodyRef::adopt(reply), std::move(meta), /*urgent=*/true);
    return;
  }
  if (const auto* reply = m.try_as<AtomicReadReply>()) {
    auto it = pending_reads_.find(reply->rpc);
    if (it == pending_reads_.end()) return;  // duplicated reply
    PendingRead pending = std::move(it->second);
    pending_reads_.erase(it);
    recorder().record_read(id(), reply->x, reply->v, reply->source,
                           pending.invoked, now());
    pending.done(reply->v);
    return;
  }
  if (const auto* wr = m.try_as<AtomicWriteRequest>()) {
    PARDSM_CHECK(home_of(wr->x) == id(), "write request at non-home");
    // Apply at most once (duplicated requests re-ack but must not revert
    // the authoritative copy to an older value).
    if (applied_ids_.insert(wr->id)) {
      mutable_store().put(wr->x, wr->v, wr->id);
      ++mutable_stats().updates_applied;
    }
    // Refresh standbys (everyone in C(x) except home and writer).
    auto* refresh = refresh_pool_->create();
    refresh->x = wr->x;
    refresh->v = wr->v;
    refresh->id = wr->id;
    SendPlan rplan;
    rplan.body = BodyRef::adopt(refresh);
    rplan.meta.kind = kRefreshKind;
    rplan.meta.control_bytes = 16 + 8;
    rplan.meta.payload_bytes = 8;
    rplan.meta.vars_mentioned = {wr->x};
    for (ProcessId q : replicas_of(wr->x)) {
      if (q != id() && q != m.from) rplan.to.push_back(q);
    }
    emit(std::move(rplan));
    auto* ack = write_ack_pool_->create();
    ack->x = wr->x;
    ack->rpc = wr->rpc;
    MessageMeta meta;
    meta.kind = kWriteAckKind;
    meta.control_bytes = 8 + 8;
    meta.vars_mentioned = {wr->x};
    emit_to(m.from, BodyRef::adopt(ack), std::move(meta), /*urgent=*/true);
    return;
  }
  if (const auto* ack = m.try_as<AtomicWriteAck>()) {
    auto it = pending_writes_.find(ack->rpc);
    if (it == pending_writes_.end()) return;  // duplicated ack
    PendingWrite pending = std::move(it->second);
    pending_writes_.erase(it);
    recorder().record_write(id(), pending.x, pending.v, pending.id,
                            pending.invoked, now());
    pending.done();
    return;
  }
  const auto* refresh = m.as<AtomicRefresh>();
  PARDSM_CHECK(refresh != nullptr, "atomic-home: unexpected body");
  // Standby copy; never read while this process is not the home.
  if (replicates(refresh->x)) {
    mutable_store().put(refresh->x, refresh->v, refresh->id);
  }
}

}  // namespace pardsm::mcs
