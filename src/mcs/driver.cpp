#include "mcs/driver.h"

#include "simnet/rng.h"
#include "simnet/thread_runtime.h"

namespace pardsm::mcs {

ScriptedClient::ScriptedClient(McsProcess& process, Simulator& sim,
                               Script script)
    : process_(process), sim_(sim), script_(std::move(script)) {}

void ScriptedClient::start(TimePoint start) {
  if (script_.empty()) return;
  sim_.schedule_at(start + script_.front().delay, [this] { issue(); });
}

void ScriptedClient::resume(TimePoint at) {
  if (!stalled_) return;
  PARDSM_CHECK(!process_.crashed(), "resume while the process is still down");
  stalled_ = false;
  sim_.schedule_at(at, [this] { issue(); });
}

void ScriptedClient::issue() {
  PARDSM_CHECK(next_ < script_.size(), "issue past end of script");
  if (process_.crashed()) {
    // The application fails with its process: hold this operation (and the
    // client's place in the script) until the recovery hook resumes us.
    stalled_ = true;
    return;
  }
  const ScriptOp& op = script_[next_];
  ++next_;

  const auto continue_after = [this] {
    if (next_ >= script_.size()) return;
    const Duration delay = script_[next_].delay;
    if (delay.us == 0) {
      // Schedule at the current instant to keep the event loop in control
      // (still after any messages the completed op just enqueued at t).
      sim_.schedule_at(sim_.now(), [this] { issue(); });
    } else {
      sim_.schedule_at(sim_.now() + delay, [this] { issue(); });
    }
  };

  if (op.kind == ScriptOp::Kind::kRead) {
    process_.read(op.var, [this, continue_after](Value v) {
      reads_.push_back(v);
      continue_after();
    });
  } else {
    process_.write(op.var, op.value, continue_after);
  }
}

std::vector<Script> make_random_scripts(const graph::Distribution& dist,
                                        const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Script> scripts(dist.process_count());
  Value next_value = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto& mine = dist.per_process[p];
    if (mine.empty()) continue;
    Script& script = scripts[p];
    for (std::size_t i = 0; i < spec.ops_per_process; ++i) {
      const VarId x = mine[static_cast<std::size_t>(rng.below(mine.size()))];
      if (rng.chance(spec.read_fraction)) {
        script.push_back(ScriptOp::read(x, spec.think_time));
      } else {
        script.push_back(ScriptOp::write(x, next_value++, spec.think_time));
      }
    }
  }
  return scripts;
}

std::vector<Script> make_single_writer_scripts(const graph::Distribution& dist,
                                               const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  const CliqueTable cliques(dist);
  std::vector<Script> scripts(dist.process_count());
  Value next_value = 1;
  for (std::size_t p = 0; p < dist.process_count(); ++p) {
    const auto& mine = dist.per_process[p];
    if (mine.empty()) continue;
    std::vector<VarId> writable;
    for (VarId x : mine) {
      if (cliques.clique(x).front() == static_cast<ProcessId>(p)) {
        writable.push_back(x);
      }
    }
    Script& script = scripts[p];
    for (std::size_t i = 0; i < spec.ops_per_process; ++i) {
      if (writable.empty() || rng.chance(spec.read_fraction)) {
        const VarId x =
            mine[static_cast<std::size_t>(rng.below(mine.size()))];
        script.push_back(ScriptOp::read(x, spec.think_time));
      } else {
        const VarId x = writable[static_cast<std::size_t>(
            rng.below(writable.size()))];
        script.push_back(ScriptOp::write(x, next_value++, spec.think_time));
      }
    }
  }
  return scripts;
}

namespace {

/// Per-process replica contents at quiescence (P6 compares them across
/// fault scenarios).
std::vector<std::vector<ReplicaEntry>> snapshot_replicas(
    const std::vector<std::unique_ptr<McsProcess>>& processes) {
  std::vector<std::vector<ReplicaEntry>> out;
  out.reserve(processes.size());
  for (const auto& proc : processes) {
    std::vector<ReplicaEntry> mine;
    for (VarId x : proc->store().vars()) {
      const Stored& s = proc->store().get(x);
      mine.push_back({x, s.value, s.source});
    }
    out.push_back(std::move(mine));
  }
  return out;
}

}  // namespace

namespace {

ScenarioRunResult run_impl(ProtocolKind kind, const graph::Distribution& dist,
                           const std::vector<Script>& scripts,
                           const Scenario& scenario, RunOptions options,
                           bool reliable);

}  // namespace

RunResult run_workload(ProtocolKind kind, const graph::Distribution& dist,
                       const std::vector<Script>& scripts,
                       RunOptions options) {
  // One engine, two entry points: a plain workload is a scenario with an
  // empty fault timeline (tests pin that the two paths are bit-identical).
  // Deliberately raw even when the caller's ChannelOptions drop or
  // duplicate: the fault-injection tests exercise protocol *safety* on an
  // unrepaired channel, where lost completions are expected behaviour.
  ScenarioRunResult r = run_impl(kind, dist, scripts, Scenario("lossless"),
                                 std::move(options), /*reliable=*/false);
  return static_cast<RunResult&&>(std::move(r));  // move-slice, no copy
}

ScenarioRunResult run_scenario(ProtocolKind kind,
                               const graph::Distribution& dist,
                               const std::vector<Script>& scripts,
                               const Scenario& scenario, RunOptions options) {
  // Any loss source — the timeline's or the ChannelOptions the caller
  // seeded the channel with — needs the ARQ layer for liveness.
  const bool reliable = scenario.faulty() ||
                        options.channel.drop_probability > 0.0 ||
                        options.channel.duplicate_probability > 0.0;
  return run_impl(kind, dist, scripts, scenario, std::move(options),
                  reliable);
}

namespace {

ScenarioRunResult run_impl(ProtocolKind kind, const graph::Distribution& dist,
                           const std::vector<Script>& scripts,
                           const Scenario& scenario, RunOptions options,
                           const bool reliable) {
  PARDSM_CHECK(scripts.size() == dist.process_count(),
               "one script per process required");

  SimOptions sim_options;
  sim_options.seed = options.sim_seed;
  sim_options.channel = options.channel;
  sim_options.latency = std::move(options.latency);
  Simulator sim(std::move(sim_options));

  // Faulty runs go through the ARQ layer: the protocols assume reliable
  // FIFO channels for liveness, and recovery traffic must be charged to
  // the same ledger as everything else.
  std::optional<ReliableTransport> rel;
  if (reliable) rel.emplace(sim, options.reliable);

  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = make_processes(kind, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = reliable ? rel->add_endpoint(proc.get())
                                        : sim.add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(reliable ? static_cast<Transport&>(*rel) : sim);
  }

  std::vector<std::unique_ptr<ScriptedClient>> clients;
  clients.reserve(processes.size());
  for (std::size_t p = 0; p < processes.size(); ++p) {
    clients.push_back(
        std::make_unique<ScriptedClient>(*processes[p], sim, scripts[p]));
  }

  // Apply the timeline before any client op is scheduled: events at t<=0
  // take effect immediately, so a scenario that starts lossy is lossy for
  // the very first message.
  sim.ensure_network();
  ScenarioHooks hooks;
  hooks.on_crash = [&processes](ProcessId p, TimePoint) {
    processes[static_cast<std::size_t>(p)]->crash();
  };
  hooks.on_recover = [&processes, &clients](ProcessId p, TimePoint at) {
    processes[static_cast<std::size_t>(p)]->recover();
    clients[static_cast<std::size_t>(p)]->resume(at);
  };
  scenario.apply(sim, hooks);

  for (auto& client : clients) client->start(kTimeZero);
  sim.run();

  for (const auto& client : clients) {
    PARDSM_CHECK(client->done(),
                 "run quiesced before a client finished its script — stuck "
                 "protocol, unhealed fault or lost completion");
  }

  ScenarioRunResult result;
  result.history = recorder.take_history();
  result.total_traffic = sim.stats().total();
  result.per_process_traffic = sim.stats().per_process_snapshot();
  for (const auto& proc : processes) {
    result.protocol_stats.push_back(proc->stats());
  }
  result.observed_relevant = sim.stats().exposure_sets(dist.var_count);
  result.final_replicas = snapshot_replicas(processes);
  result.finished_at = sim.now();
  result.events = sim.events_fired();

  result.used_reliable_transport = reliable;
  result.retransmissions = rel ? rel->retransmissions() : 0;
  result.drops = sim.network().drop_counters();
  for (const auto& proc : processes) {
    const RecoveryStats& r = proc->recovery_stats();
    result.crashes += r.crashes;
    result.resync_messages +=
        r.resync_requests_sent + r.resync_responses_served;
    result.resync_bytes += r.resync_bytes;
    result.resync_values_applied += r.resync_values_applied;
    result.max_recovery_latency =
        std::max(result.max_recovery_latency, proc->max_recovery_latency());
  }
  return result;
}

}  // namespace

namespace {

/// Self-driving client for the thread runtime: each completion issues the
/// next operation, always on the owning process's thread.
class ThreadedClient {
 public:
  ThreadedClient(McsProcess& process, Script script)
      : process_(process), script_(std::move(script)) {}

  /// Runs on the owner thread (via ThreadRuntime::post) and re-enters from
  /// completion callbacks, which also fire on the owner thread.
  void issue() {
    if (next_ >= script_.size()) {
      done_ = true;
      return;
    }
    const ScriptOp& op = script_[next_];
    ++next_;
    if (op.kind == ScriptOp::Kind::kRead) {
      process_.read(op.var, [this](Value v) {
        reads_.push_back(v);
        issue();
      });
    } else {
      process_.write(op.var, op.value, [this] { issue(); });
    }
  }

  [[nodiscard]] bool done() const { return done_ || script_.empty(); }

 private:
  McsProcess& process_;
  Script script_;
  std::size_t next_ = 0;
  std::vector<Value> reads_;
  bool done_ = false;
};

}  // namespace

RunResult run_workload_threaded(ProtocolKind kind,
                                const graph::Distribution& dist,
                                const std::vector<Script>& scripts,
                                std::chrono::milliseconds quiesce_timeout) {
  PARDSM_CHECK(scripts.size() == dist.process_count(),
               "one script per process required");

  ThreadRuntime rt;
  HistoryRecorder recorder(dist.process_count(), dist.var_count);
  auto processes = make_processes(kind, dist, recorder);
  for (auto& proc : processes) {
    const ProcessId assigned = rt.add_endpoint(proc.get());
    PARDSM_CHECK(assigned == proc->id(), "process id mismatch");
    proc->attach(rt);
  }

  std::vector<std::unique_ptr<ThreadedClient>> clients;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    clients.push_back(
        std::make_unique<ThreadedClient>(*processes[p], scripts[p]));
  }

  rt.start();
  for (std::size_t p = 0; p < clients.size(); ++p) {
    rt.post(static_cast<ProcessId>(p),
            [client = clients[p].get()] { client->issue(); });
  }
  const bool quiet = rt.await_quiescence(quiesce_timeout);
  PARDSM_CHECK(quiet, "thread runtime failed to quiesce — protocol stuck?");
  rt.stop();

  for (const auto& client : clients) {
    PARDSM_CHECK(client->done(), "threaded client did not finish its script");
  }

  RunResult result;
  result.history = recorder.take_history();
  result.total_traffic = rt.stats().total();
  result.per_process_traffic = rt.stats().per_process_snapshot();
  for (const auto& proc : processes) {
    result.protocol_stats.push_back(proc->stats());
  }
  result.observed_relevant = rt.stats().exposure_sets(dist.var_count);
  result.final_replicas = snapshot_replicas(processes);
  return result;
}

}  // namespace pardsm::mcs
