// Slow memory with partial replication (Hutto & Ahamad; the paper cites it
// via Sinha [16] as the rung below PRAM).
//
// Guarantee: writes by one process to one *variable* are observed in
// program order; writes by the same process to different variables may be
// observed reordered.  The protocol deliberately exercises that freedom:
// each incoming update is buffered and applied after a deterministic
// per-variable jitter, preserving per-(writer, variable) order via
// sequence numbers but freely interleaving across variables — a model for
// per-variable channels or NUMA store buffers.
//
// Efficiency is as good as PRAM: updates go only to C(x), O(1) control
// bytes.  The ablation bench (bench_control_overhead) shows the weaker
// criterion buys nothing further — PRAM is already efficient, which is why
// the paper stops at PRAM.
#pragma once

#include <map>

#include "mcs/protocol.h"
#include "simnet/recycling_alloc.h"

namespace pardsm::mcs {

struct SlowUpdate;

/// One process of the slow-memory partial-replication protocol.
class SlowPartialProcess final : public McsProcess {
 public:
  SlowPartialProcess(ProcessId self, const graph::Distribution& dist,
                     HistoryRecorder& recorder);

  void read(VarId x, ReadCallback done) override;
  void write(VarId x, Value v, WriteCallback done) override;
  void handle_message(const Message& m) override;
  void handle_timer(TimerTag tag) override;
  void on_attach() override;

  [[nodiscard]] std::string name() const override { return "slow-partial"; }
  [[nodiscard]] bool wait_free() const override { return true; }

 private:
  struct Pending {
    VarId x = kNoVar;
    Value v = kBottom;
    WriteId id{};
    std::int64_t var_seq = 0;
    ProcessId writer = kNoProcess;
  };
  /// Jitter queues and timer entries churn once per delivered update;
  /// recycling their map nodes keeps the steady state off the heap.
  using PendingQueue =
      std::map<std::int64_t, Pending, std::less<std::int64_t>,
               RecyclingAlloc<std::pair<const std::int64_t, Pending>>>;
  void drain(ProcessId writer, VarId x);

  /// Pool handle cached at attach() so each write is a freelist pop.
  BodyPool<SlowUpdate>* update_pool_ = nullptr;
  std::int64_t next_write_seq_ = 0;
  /// Node freelist shared by the churn-prone containers below (declared
  /// first: containers must die before their pool).
  RecyclingPool node_pool_;
  /// Writer-local per-variable sequence numbers for outgoing updates.
  std::map<VarId, std::int64_t> my_var_seq_;
  /// Next expected var_seq per (writer, variable).
  std::map<std::pair<ProcessId, VarId>, std::int64_t> expected_;
  /// Buffered out-of-jitter updates per (writer, variable), keyed by seq.
  /// Outer keys persist once seen (cold inserts); the inner queues churn
  /// and draw their nodes from node_pool_.
  std::map<std::pair<ProcessId, VarId>, PendingQueue> pending_;
  /// Timer tags -> (writer, variable) queues to drain.
  std::map<TimerTag, std::pair<ProcessId, VarId>, std::less<TimerTag>,
           RecyclingAlloc<std::pair<const TimerTag,
                                    std::pair<ProcessId, VarId>>>>
      timers_{RecyclingAlloc<std::pair<const TimerTag,
                                       std::pair<ProcessId, VarId>>>(
          &node_pool_)};
  TimerTag next_timer_ = 1;
};

}  // namespace pardsm::mcs
