// The paper's example histories (Figures 3–6), encoded exactly.
//
// Each example bundles the history with the variable distribution {X_i}
// printed in (or implied by) the figure, so share-graph analyses and
// consistency checks can run on the same object the paper discusses.
//
// Expected classifications (asserted by tests/test_paper_histories.cpp):
//
//   Fig 3  (x-dependency chain along a hoop, non-violating variant):
//          causal — it is the *pattern* that creates the chain.
//   Fig 4  lazy-causal YES, causal NO  (paper: "lazy causal but not causal")
//   Fig 5  lazy-causal NO, lazy-semi-causal YES, PRAM YES
//   Fig 6  lazy-semi-causal NO, PRAM YES
#pragma once

#include <string>
#include <vector>

#include "history/history.h"

namespace pardsm::hist::paper {

/// A paper example: history + variable distribution (X_i per process).
struct Example {
  std::string name;
  History history;
  /// distribution[i] = X_i, the variables process i replicates/accesses.
  std::vector<std::vector<VarId>> distribution;
  /// The variable the figure's dependency-chain discussion focuses on.
  VarId focus_var = 0;
};

/// Final operation type for the generic Figure 3 pattern.
enum class ChainEnd {
  kRead,         ///< o_b(x) = r_b(x)v — reads the chain-initial write
  kWrite,        ///< o_b(x) = w_b(x)v'
  kStaleRead,    ///< o_b(x) = r_b(x)⊥ — *violates* causal consistency
};

/// Figure 3: a history including an x-dependency chain along the x-hoop
/// [p_0, p_1, ..., p_k] (k+1 processes).  Variable 0 is x; variables
/// 1..k are the hoop variables x_1..x_k.  C(x) = {p_0, p_k}.
[[nodiscard]] Example fig3_dependency_chain(std::size_t hoop_length_k,
                                            ChainEnd end = ChainEnd::kRead);

/// Figure 4: history that is lazy causal but not causal.
/// Processes p0..p2; x = var 0, y = var 1; a=1, b=2, c=3.
[[nodiscard]] Example fig4_lazy_causal_not_causal();

/// Figure 5: history that is not lazy causal (but is lazy semi-causal and
/// PRAM).  Adds p3 reading d then a.  x=0, y=1; a=1,b=2,c=3,d=4.
[[nodiscard]] Example fig5_not_lazy_causal();

/// Figure 6: history that is not lazy semi-causal (but is PRAM).
/// x=0, y=1, z=2; a=1,b=2,c=3,d=4,e=5.
[[nodiscard]] Example fig6_not_lazy_semi_causal();

/// All four examples (Fig 3 with k=2, read end), for sweep-style tests.
[[nodiscard]] std::vector<Example> all_examples();

}  // namespace pardsm::hist::paper
