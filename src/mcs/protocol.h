// Protocol framework: the MCS process abstraction.
//
// An McsProcess pairs with one application process: the application calls
// read()/write() (asynchronous, callback-based — wait-free protocols
// complete them synchronously before returning), the MCS process exchanges
// messages with its peers through the Transport to keep replicas
// consistent, and every completed operation is recorded for post-hoc
// checking.
//
// The asynchronous operation API is what lets the same protocol code run
// under the single-threaded discrete-event simulator (where a blocking
// call would deadlock the event loop) and under the thread runtime.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mcs/recorder.h"
#include "mcs/replica_store.h"
#include "sharegraph/share_graph.h"
#include "simnet/check.h"
#include "simnet/stats.h"
#include "simnet/transport.h"

namespace pardsm::mcs {

/// Completion callback of a read (receives the value returned).
using ReadCallback = std::function<void(Value)>;

/// Completion callback of a write.
using WriteCallback = std::function<void()>;

/// Protocol-internal counters (beyond NetworkStats).
struct ProtocolStats {
  std::uint64_t local_reads = 0;    ///< reads served from the local replica
  std::uint64_t remote_reads = 0;   ///< reads that required a round trip
  std::uint64_t writes = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_buffered = 0;  ///< delayed for causal readiness
  std::uint64_t max_buffer_depth = 0;
};

/// Immutable var → C(x) table, built in one pass over the distribution
/// (O(Σ|X_i|)).  Protocols consult C(x) on every write, and
/// Distribution::replicas_of allocates a fresh vector per call — far too
/// expensive for the hot path.  One table is shared by all processes of a
/// system (make_processes injects it).
class CliqueTable {
 public:
  explicit CliqueTable(const graph::Distribution& dist) {
    cliques_.resize(dist.var_count);
    for (std::size_t p = 0; p < dist.per_process.size(); ++p) {
      for (VarId x : dist.per_process[p]) {
        PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < dist.var_count,
                     "CliqueTable: variable id out of range");
        cliques_[static_cast<std::size_t>(x)].push_back(
            static_cast<ProcessId>(p));  // p ascending → sorted
      }
    }
    // A process listing x twice must appear in C(x) once, exactly as
    // Distribution::replicas_of reports it.
    for (auto& clique : cliques_) {
      clique.erase(std::unique(clique.begin(), clique.end()), clique.end());
    }
  }

  [[nodiscard]] const std::vector<ProcessId>& clique(VarId x) const {
    PARDSM_CHECK(x >= 0 && static_cast<std::size_t>(x) < cliques_.size(),
                 "CliqueTable: bad variable");
    return cliques_[static_cast<std::size_t>(x)];
  }

 private:
  std::vector<std::vector<ProcessId>> cliques_;
};

/// Base class of every memory-consistency protocol instance (one per
/// process).
class McsProcess : public Endpoint {
 public:
  /// `dist` and `recorder` must outlive the process; `transport` is wired
  /// afterwards via attach() because process ids are assigned by the
  /// runtime at registration time.
  McsProcess(ProcessId self, const graph::Distribution& dist,
             HistoryRecorder& recorder)
      : self_(self),
        dist_(dist),
        recorder_(recorder),
        store_(dist.per_process.at(static_cast<std::size_t>(self))) {}

  /// Share one clique table across all processes of a system (the factory
  /// calls this; a process constructed stand-alone builds its own lazily).
  void use_clique_table(std::shared_ptr<const CliqueTable> table) {
    cliques_ = std::move(table);
  }

  /// Wire the transport (after runtime registration).
  void attach(Transport& transport) { transport_ = &transport; }

  /// Asynchronous read of x; `done` receives the value.  Calling read on a
  /// variable outside X_i is a programming error (partial replication
  /// means the application only accesses its own variables).
  virtual void read(VarId x, ReadCallback done) = 0;

  /// Asynchronous write of v to x.
  virtual void write(VarId x, Value v, WriteCallback done) = 0;

  /// Human-readable protocol name.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if this protocol serves reads and writes without waiting for the
  /// network (the paper's wait-free local-access property, §3.3).
  [[nodiscard]] virtual bool wait_free() const = 0;

  [[nodiscard]] ProcessId id() const { return self_; }
  [[nodiscard]] const ProtocolStats& stats() const { return pstats_; }
  [[nodiscard]] const ReplicaStore& store() const { return store_; }
  [[nodiscard]] bool replicates(VarId x) const { return store_.holds(x); }

 protected:
  [[nodiscard]] Transport& transport() {
    PARDSM_CHECK(transport_ != nullptr, "McsProcess used before attach()");
    return *transport_;
  }
  [[nodiscard]] TimePoint now() const {
    return transport_ ? transport_->now() : TimePoint{};
  }
  [[nodiscard]] const graph::Distribution& distribution() const {
    return dist_;
  }
  /// C(x) as a sorted list from the cached table (no allocation per call,
  /// unlike Distribution::replicas_of).
  [[nodiscard]] const std::vector<ProcessId>& replicas_of(VarId x) const {
    if (!cliques_) cliques_ = std::make_shared<CliqueTable>(dist_);
    return cliques_->clique(x);
  }
  /// True if process q replicates x (binary search of the cached C(x)).
  [[nodiscard]] bool clique_holds(ProcessId q, VarId x) const {
    const auto& c = replicas_of(x);
    return std::binary_search(c.begin(), c.end(), q);
  }
  [[nodiscard]] HistoryRecorder& recorder() { return recorder_; }
  [[nodiscard]] ReplicaStore& mutable_store() { return store_; }
  [[nodiscard]] ProtocolStats& mutable_stats() { return pstats_; }

  /// Serve a read from the local replica, recording it.  Shared by all
  /// wait-free protocols.
  void local_read(VarId x, const ReadCallback& done) {
    PARDSM_CHECK(store_.holds(x),
                 "application read of a variable outside X_i");
    const Stored& s = store_.get(x);
    ++pstats_.local_reads;
    const TimePoint t = now();
    recorder_.record_read(self_, x, s.value, s.source, t, t);
    done(s.value);
  }

 private:
  ProcessId self_;
  const graph::Distribution& dist_;
  HistoryRecorder& recorder_;
  ReplicaStore store_;
  ProtocolStats pstats_;
  Transport* transport_ = nullptr;
  /// Shared (or lazily self-built) C(x) table; mutable for the lazy path.
  mutable std::shared_ptr<const CliqueTable> cliques_;
};

/// The protocols implemented in this repository.  The last two are the
/// repository's extensions toward the paper's open question (conclusion):
/// criteria other than / stronger than PRAM that still admit efficient
/// partial replication.
enum class ProtocolKind {
  kAtomicHome,          ///< linearizable, home-based RPC
  kSequencerSC,         ///< sequentially consistent, sequencer total order
  kCausalFull,          ///< causal, full replication, vector clocks [3]
  kCausalPartialNaive,  ///< causal, partial replicas, global notifications
  kCausalPartialAdHoc,  ///< causal, partial replicas, hoop-routed metadata
  kPramPartial,         ///< PRAM, partial replicas (the paper's efficient case)
  kSlowPartial,         ///< slow memory, partial replicas
  kCachePartial,        ///< cache consistency, per-variable home sequencing
  kProcessorPartial,    ///< PRAM ∧ cache (processor consistency)
};

[[nodiscard]] const char* to_string(ProtocolKind k);

/// All protocol kinds, strongest criterion first.
[[nodiscard]] const std::vector<ProtocolKind>& all_protocols();

/// The weakest criterion each protocol is required to satisfy (used by
/// property tests: recorded histories must pass this checker and all
/// weaker ones).
enum class GuaranteeLevel {
  kAtomic,
  kSequential,
  kCausal,
  kProcessor,  ///< PRAM ∧ cache
  kPram,
  kCache,      ///< per-variable sequential consistency (incomparable to PRAM)
  kSlow,
};
[[nodiscard]] GuaranteeLevel guarantee_of(ProtocolKind k);

}  // namespace pardsm::mcs
