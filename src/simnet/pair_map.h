// Flat hash map over packed directed-pair indices.
//
// Network keeps per-pair channel state (FIFO clamp, severed-cut counts,
// loss/duplication overrides).  Dense n×n tables cost ~28 B per pair —
// ~470 MB at n = 4096 — even when every pair sits at its default, which
// locks the engine out of the large-n regime the paper's efficiency
// argument is about.  PairMap stores only the pairs that ever diverged
// from the default: open addressing with linear probing over a
// power-of-two slot array, keyed by the packed pair index
// (from * n + to), so a lookup is one multiplicative hash plus a short
// probe — cheap enough for plan_delivery's per-send path.
//
// Restricted to trivially copyable mapped types (counters, rates, time
// points).  Entries are never erased: channel state only ever shrinks by
// whole-map clear() (set_*_all), which keeps probe chains tombstone-free.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "simnet/check.h"

namespace pardsm {

template <typename V>
class PairMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "PairMap is for trivially copyable mapped types");

 public:
  PairMap() = default;

  /// Pointer to the value stored for `key`, or nullptr when the pair has
  /// never been touched (caller falls back to the default).
  [[nodiscard]] const V* find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      const Slot& s = slots_[i];
      // kEmpty first: the reserved key must miss, not match a vacant slot.
      if (s.key == kEmpty) return nullptr;
      if (s.key == key) return &s.value;
    }
  }
  [[nodiscard]] V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Value for `key`, inserting `init` first if the pair is new.  The
  /// returned reference is invalidated by the next insertion (rehash).
  V& get_or_insert(std::uint64_t key, const V& init) {
    PARDSM_CHECK(key != kEmpty, "PairMap: reserved key");
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) grow();
    for (std::size_t i = probe_start(key);; i = (i + 1) & mask()) {
      Slot& s = slots_[i];
      if (s.key == key) return s.value;
      if (s.key == kEmpty) {
        s.key = key;
        s.value = init;
        ++size_;
        return s.value;
      }
    }
  }

  /// Drop every entry (the map falls back to "all pairs at default") and
  /// release the slot array.
  void clear() {
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Bytes held by the slot array (capacity, not just live entries) —
  /// what the O(active pairs) memory claim is measured against.
  [[nodiscard]] std::size_t memory_bytes() const {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    V value{};
  };

  static constexpr std::uint64_t kEmpty = ~0ULL;

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }

  /// SplitMix64-style finalizer: packed pair indices are highly regular
  /// (consecutive `to` values share a `from` stripe), so the multiply-xor
  /// cascade is what spreads them across the table.
  [[nodiscard]] std::size_t probe_start(std::uint64_t key) const {
    std::uint64_t z = key + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31)) & mask();
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kEmpty) get_or_insert(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace pardsm
