#include "mcs/causal_full.h"

#include <algorithm>

#include "simnet/wire.h"

namespace pardsm::mcs {

/// Body of a full-replication causal update.
struct CausalUpdate final : MessageBody {
  VarId x = kNoVar;
  Value v = kBottom;
  WriteId id{};
  VectorClock vc;

  /// Pool reset: every field is overwritten on reuse (write path and wire
  /// decoder assign all four) and the clock's copy-assignment reuses its
  /// storage, so nothing needs clearing.
  // pardsm-lint: overwritten-by-creator(x, v, id, vc)
  void reset() {}

  [[nodiscard]] std::uint32_t wire_type() const override {
    return wire::kCausalUpdate;
  }
  void wire_encode(WireWriter& w) const override {
    w.i32(x);
    w.i64(v);
    wire::put_write_id(w, id);
    put_vector_clock(w, vc);
  }
};

namespace {

const wire::BodyRegistrar causal_codec(
    wire::kCausalUpdate, [](WireReader& r, BodyArena& arena) -> BodyRef {
      auto* b = arena.create<CausalUpdate>();
      b->x = r.i32();
      b->v = r.i64();
      b->id = wire::get_write_id(r);
      b->vc = get_vector_clock(r);
      return BodyRef::adopt(b);
    });

/// All variables of the distribution (full replication ignores X_i for
/// storage purposes; the *application* still only accesses X_i).
std::vector<VarId> all_vars(const graph::Distribution& dist) {
  std::vector<VarId> out(dist.var_count);
  for (std::size_t x = 0; x < dist.var_count; ++x) {
    out[x] = static_cast<VarId>(x);
  }
  return out;
}

/// Message kind, interned once so the send path never hits the table.
const KindId kUpdateKind("CUPD");

}  // namespace

CausalFullProcess::CausalFullProcess(ProcessId self,
                                     const graph::Distribution& dist,
                                     HistoryRecorder& recorder)
    : McsProcess(self, dist, recorder), vc_(dist.process_count()) {
  // Replace the partial store with a complete one.
  mutable_store() = ReplicaStore(all_vars(dist));
}

void CausalFullProcess::on_attach() {
  update_pool_ = &arena().pool<CausalUpdate>();
}

void CausalFullProcess::read(VarId x, ReadCallback done) {
  local_read(x, done);
}

void CausalFullProcess::write(VarId x, Value v, WriteCallback done) {
  vc_.increment(id());
  const WriteId wid{id(), next_write_seq_++};
  const TimePoint t = now();
  mutable_store().put(x, v, wid);
  recorder().record_write(id(), x, v, wid, t, t);
  ++mutable_stats().writes;

  auto* body = update_pool_->create();
  body->x = x;
  body->v = v;
  body->id = wid;
  body->vc = vc_;

  SendPlan plan;
  plan.body = BodyRef::adopt(body);
  plan.meta.kind = kUpdateKind;
  plan.meta.control_bytes = vc_.wire_bytes() + 16 /*write id*/ + 8 /*var*/;
  plan.meta.payload_bytes = 8;
  plan.meta.vars_mentioned = {x};
  const auto n = static_cast<ProcessId>(transport().process_count());
  for (ProcessId q = 0; q < n; ++q) {
    if (q != id()) plan.to.push_back(q);
  }
  emit(std::move(plan));
  done();
}

void CausalFullProcess::handle_message(const Message& m) {
  buffer_.push_back(m);
  mutable_stats().max_buffer_depth = std::max(
      mutable_stats().max_buffer_depth,
      static_cast<std::uint64_t>(buffer_.size()));
  try_deliver();
}

void CausalFullProcess::try_deliver() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      const auto* u = it->as<CausalUpdate>();
      PARDSM_CHECK(u != nullptr, "causal-full: unexpected message body");
      if (!vc_.ready_from(u->vc, it->from)) {
        ++mutable_stats().updates_buffered;
        continue;
      }
      vc_.merge(u->vc);
      mutable_store().put(u->x, u->v, u->id);
      ++mutable_stats().updates_applied;
      buffer_.erase(it);
      progress = true;
      break;
    }
  }
}

}  // namespace pardsm::mcs
