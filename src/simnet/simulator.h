// Deterministic discrete-event simulator.
//
// The Simulator is the primary runtime for all tests and benchmarks: a
// single-threaded event loop over a seeded Network.  Executions are a pure
// function of (seed, endpoint logic), which is what lets the test suite
// assert byte-exact metric values and replay failures.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simnet/event_queue.h"
#include "simnet/network.h"
#include "simnet/stats.h"
#include "simnet/trace.h"
#include "simnet/transport.h"

namespace pardsm {

/// Configuration for a simulation run.
struct SimOptions {
  std::uint64_t seed = 1;
  ChannelOptions channel;
  /// Latency model; null means constant 1ms.
  std::unique_ptr<LatencyModel> latency;
  /// Abort (throw) if more than this many events fire — guards against
  /// non-terminating protocols in tests.
  std::uint64_t max_events = 50'000'000;
};

/// Single-threaded deterministic event-loop Transport implementation.
class Simulator final : public HostTransport {
 public:
  explicit Simulator(SimOptions options = {});
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Register the endpoint for the next free ProcessId (0, 1, 2, ...).
  /// The endpoint must outlive the simulator.  Returns the assigned id.
  ProcessId add_endpoint(Endpoint* ep) override;

  // -- Transport interface ------------------------------------------------
  void send(ProcessId from, ProcessId to, BodyRef body,
            MessageMeta meta) override;
  [[nodiscard]] TimePoint now() const override { return now_; }
  void set_timer(ProcessId who, Duration delay, TimerTag tag) override;
  [[nodiscard]] std::size_t process_count() const override {
    return endpoints_.size();
  }
  /// Serial arena: this runtime is single-threaded, so its bodies use
  /// non-atomic refcounts and unlocked freelists.
  [[nodiscard]] BodyArena& arena(ProcessId owner) override {
    (void)owner;
    return arena_;
  }

  // -- Execution control ---------------------------------------------------
  /// Schedule an arbitrary closure at an absolute time (drivers use this to
  /// inject initial operations).
  void schedule_at(TimePoint when, std::function<void()> fn);

  /// Run one event; returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains (quiescence).
  void run();

  /// Run while events exist and their time is <= deadline; returns true if
  /// the queue drained (quiescent before the deadline).
  bool run_until(TimePoint deadline);

  /// Materialize the network now (it is otherwise created lazily at the
  /// first send).  Endpoint registration freezes here.  Scenario timelines
  /// call this so fault events can be applied before any traffic flows.
  Network& ensure_network();

  // -- Introspection --------------------------------------------------------
  [[nodiscard]] NetworkStats& stats() { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  void deliver(Message& m);

  SimOptions options_;
  Rng rng_;
  BodyArena arena_{/*concurrent=*/false};
  std::unique_ptr<Network> network_;  // created lazily once size is known
  std::vector<Endpoint*> endpoints_;
  EventQueue queue_;
  NetworkStats stats_;
  Trace trace_;
  TimePoint now_{};
  std::uint64_t next_msg_id_ = 1;
  std::uint64_t events_fired_ = 0;
  bool network_frozen_ = false;
};

}  // namespace pardsm
