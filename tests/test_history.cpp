// History container unit tests: construction, projections, read-from
// resolution, provenance.

#include <gtest/gtest.h>

#include "history/history.h"

namespace pardsm::hist {
namespace {

TEST(History, BasicConstruction) {
  History h(3, 2);
  EXPECT_EQ(h.process_count(), 3u);
  EXPECT_EQ(h.var_count(), 2u);
  EXPECT_EQ(h.size(), 0u);
}

TEST(History, PushAssignsProgramPositionsAndWriteIds) {
  History h(2, 2);
  const auto w1 = h.push_write(0, 0, 10);
  const auto w2 = h.push_write(0, 1, 20);
  const auto r1 = h.push_read(1, 0, 10);
  EXPECT_EQ(h.op(w1).proc_seq, 0);
  EXPECT_EQ(h.op(w2).proc_seq, 1);
  EXPECT_EQ(h.op(r1).proc_seq, 0);
  EXPECT_EQ(h.op(w1).write_id, (WriteId{0, 0}));
  EXPECT_EQ(h.op(w2).write_id, (WriteId{0, 1}));
}

TEST(History, OpsOfAndWrites) {
  History h(2, 2);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, 1);
  h.push_write(1, 1, 2);
  EXPECT_EQ(h.ops_of(0).size(), 1u);
  EXPECT_EQ(h.ops_of(1).size(), 2u);
  EXPECT_EQ(h.writes().size(), 2u);
  EXPECT_EQ(h.writes_on(1), (std::vector<OpIndex>{2}));
}

TEST(History, ProjectionIPlusW) {
  History h(2, 2);
  h.push_write(0, 0, 1);  // 0
  h.push_read(0, 0, 1);   // 1
  h.push_write(1, 1, 2);  // 2
  h.push_read(1, 1, 2);   // 3
  EXPECT_EQ(h.projection_i_plus_w(0), (std::vector<OpIndex>{0, 1, 2}));
  EXPECT_EQ(h.projection_i_plus_w(1), (std::vector<OpIndex>{0, 2, 3}));
}

TEST(History, ResolveByUniqueValue) {
  History h(2, 1);
  h.push_write(0, 0, 42);
  h.push_read(1, 0, 42);
  const auto src = h.resolve_read_from();
  EXPECT_EQ(src[1], 0);
  EXPECT_EQ(src[0], kNoOp);
}

TEST(History, ResolveByProvenanceBeatsValueAmbiguity) {
  History h(3, 1);
  const auto w1 = h.push_write(0, 0, 7);
  const auto w2 = h.push_write(1, 0, 7);  // same value!
  h.push_read(2, 0, 7, h.op(w2).write_id);
  const auto src = h.resolve_read_from();
  EXPECT_EQ(src[2], w2);
  (void)w1;
}

TEST(History, AmbiguousValueWithoutProvenanceThrows) {
  History h(3, 1);
  h.push_write(0, 0, 7);
  h.push_write(1, 0, 7);
  h.push_read(2, 0, 7);  // ambiguous
  EXPECT_FALSE(h.read_from_resolvable());
  EXPECT_THROW((void)h.resolve_read_from(), std::logic_error);
}

TEST(History, UnwrittenValueThrows) {
  History h(1, 1);
  h.push_read(0, 0, 9);
  EXPECT_FALSE(h.read_from_resolvable());
}

TEST(History, BottomReadResolvesToNoOp) {
  History h(1, 1);
  h.push_read(0, 0, kBottom);
  const auto src = h.resolve_read_from();
  EXPECT_EQ(src[0], kNoOp);
  EXPECT_TRUE(h.read_from_resolvable());
}

TEST(History, ToStringShowsPerProcessRows) {
  History h(2, 1);
  h.push_write(0, 0, 1);
  h.push_read(1, 0, kBottom);
  const auto s = h.to_string();
  EXPECT_NE(s.find("p0: w0(x0)1"), std::string::npos);
  EXPECT_NE(s.find("p1: r1(x0)⊥"), std::string::npos);
}

TEST(History, IntervalsStored) {
  History h(1, 1);
  const auto w = h.push_write(0, 0, 1);
  h.set_interval(w, TimePoint{3}, TimePoint{9});
  EXPECT_EQ(h.op(w).invoked, TimePoint{3});
  EXPECT_EQ(h.op(w).responded, TimePoint{9});
}

TEST(Operation, ToStringFormats) {
  Operation op;
  op.kind = Operation::Kind::kWrite;
  op.proc = 2;
  op.var = 1;
  op.value = 5;
  EXPECT_EQ(op.to_string(), "w2(x1)5");
  op.kind = Operation::Kind::kRead;
  op.value = kBottom;
  EXPECT_EQ(op.to_string(), "r2(x1)⊥");
}

}  // namespace
}  // namespace pardsm::hist
