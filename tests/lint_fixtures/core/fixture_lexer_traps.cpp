// pardsm_lint fixture: lexer traps.  Every forbidden name below sits in a
// comment, string, raw string or char literal, so a correct lexer reports
// ZERO findings for this file.  A text-grep "linter" would drown here.
//
// std::rand() getenv("PATH") system_clock mt19937 — still a comment.
/* block comment: steady_clock, uniform_int_distribution,
   for (auto& kv : some_unordered_map) — none of this is code. */

namespace fixture {

const char* s1 = "std::rand() getenv unordered_map system_clock";
const char* s2 = "escaped quote \" then random_device";
const char* s3 = R"(raw: steady_clock mt19937 #include "apps/x.h")";
const char* s4 = R"delim(trickier raw: )" time(nullptr) )delim";
const char c1 = 'r';

// Identifiers merely *containing* forbidden names must not fire either.
int my_system_clock_count = 0;
int brand_total = 0;

}  // namespace fixture
