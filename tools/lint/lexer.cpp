#include "lexer.h"

#include <cctype>

namespace pardsm::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  LexedFile run() {
    while (i_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  char cur() const { return text_[i_]; }
  char peek(std::size_t off = 1) const {
    return i_ + off < text_.size() ? text_[i_ + off] : '\0';
  }
  bool done() const { return i_ >= text_.size(); }

  void advance() {
    if (text_[i_] == '\n') {
      ++line_;
      line_blank_ = true;
    }
    ++i_;
  }

  void step() {
    const char c = cur();
    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance();
      return;
    }
    if (c == '/' && peek() == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek() == '*') {
      block_comment();
      return;
    }
    if (c == '#' && line_blank_) {
      // The directive makes this line non-blank: a comment after it is a
      // trailing comment, so allow(...) markers work on #include lines.
      line_blank_ = false;
      directive();
      return;
    }
    line_blank_ = false;
    if (c == '"') {
      string_lit("");
      return;
    }
    if (c == '\'') {
      char_lit();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      number();
      return;
    }
    if (is_ident_start(c)) {
      identifier();
      return;
    }
    punct();
  }

  void line_comment() {
    Comment cm;
    cm.line = line_;
    cm.standalone = line_blank_;
    i_ += 2;  // "//"
    const std::size_t start = i_;
    while (!done() && cur() != '\n') ++i_;
    cm.text = std::string(text_.substr(start, i_ - start));
    out_.comments.push_back(std::move(cm));
  }

  void block_comment() {
    Comment cm;
    cm.line = line_;
    cm.standalone = line_blank_;
    i_ += 2;  // "/*"
    const std::size_t start = i_;
    std::size_t end = text_.size();
    while (!done()) {
      if (cur() == '*' && peek() == '/') {
        end = i_;
        advance();
        advance();
        break;
      }
      advance();
    }
    cm.text = std::string(text_.substr(start, end - start));
    out_.comments.push_back(std::move(cm));
  }

  /// Reads a preprocessor line (with backslash continuations).  Stops at a
  /// comment start so trailing `// pardsm-lint: ...` markers survive as
  /// ordinary comments.
  void directive() {
    const int dline = line_;
    advance();  // '#'
    std::string body;
    while (!done()) {
      const char c = cur();
      if (c == '\n') {
        if (!body.empty() && body.back() == '\\') {
          body.pop_back();
          advance();
          continue;
        }
        break;
      }
      if (c == '/' && (peek() == '/' || peek() == '*')) break;
      body.push_back(c);
      advance();
    }
    parse_include(dline, body);
    Directive d;
    d.line = dline;
    d.text = std::move(body);
    out_.directives.push_back(std::move(d));
  }

  void parse_include(int dline, const std::string& body) {
    std::size_t p = 0;
    while (p < body.size() &&
           std::isspace(static_cast<unsigned char>(body[p]))) {
      ++p;
    }
    static const std::string kw = "include";
    if (body.compare(p, kw.size(), kw) != 0) return;
    p += kw.size();
    while (p < body.size() &&
           std::isspace(static_cast<unsigned char>(body[p]))) {
      ++p;
    }
    if (p >= body.size()) return;
    const char open = body[p];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;
    const std::size_t endpos = body.find(close, p + 1);
    if (endpos == std::string::npos) return;
    Include inc;
    inc.line = dline;
    inc.angled = open == '<';
    inc.target = body.substr(p + 1, endpos - p - 1);
    out_.includes.push_back(std::move(inc));
  }

  void string_lit(const std::string& prefix) {
    Token t;
    t.kind = TokKind::kString;
    t.line = line_;
    t.text = prefix;
    t.text.push_back('"');
    advance();  // opening quote
    while (!done()) {
      const char c = cur();
      t.text.push_back(c);
      if (c == '\\' && peek() != '\0') {
        advance();
        t.text.push_back(cur());
        advance();
        continue;
      }
      advance();
      if (c == '"') break;
      if (c == '\n') break;  // unterminated; don't eat the file
    }
    out_.tokens.push_back(std::move(t));
  }

  void raw_string(const std::string& prefix) {
    Token t;
    t.kind = TokKind::kString;
    t.line = line_;
    t.text = prefix;
    t.text.push_back('"');
    advance();  // opening quote
    std::string delim;
    while (!done() && cur() != '(' && cur() != '\n') {
      delim.push_back(cur());
      t.text.push_back(cur());
      advance();
    }
    if (done() || cur() != '(') {  // malformed; treat as ended
      out_.tokens.push_back(std::move(t));
      return;
    }
    t.text.push_back('(');
    advance();
    const std::string closer = ")" + delim + "\"";
    while (!done()) {
      if (cur() == ')' &&
          text_.compare(i_, closer.size(), closer) == 0) {
        t.text += closer;
        for (std::size_t k = 0; k < closer.size(); ++k) advance();
        break;
      }
      t.text.push_back(cur());
      advance();
    }
    out_.tokens.push_back(std::move(t));
  }

  void char_lit() {
    Token t;
    t.kind = TokKind::kChar;
    t.line = line_;
    t.text.push_back('\'');
    advance();
    while (!done()) {
      const char c = cur();
      t.text.push_back(c);
      if (c == '\\' && peek() != '\0') {
        advance();
        t.text.push_back(cur());
        advance();
        continue;
      }
      advance();
      if (c == '\'' || c == '\n') break;
    }
    out_.tokens.push_back(std::move(t));
  }

  void number() {
    Token t;
    t.kind = TokKind::kNumber;
    t.line = line_;
    while (!done()) {
      const char c = cur();
      if (is_ident_char(c) || c == '.' || c == '\'') {
        t.text.push_back(c);
        advance();
        // Exponent signs: 1e+3, 0x1.0p-53.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && !done() &&
            (cur() == '+' || cur() == '-')) {
          t.text.push_back(cur());
          advance();
        }
        continue;
      }
      break;
    }
    out_.tokens.push_back(std::move(t));
  }

  void identifier() {
    Token t;
    t.kind = TokKind::kIdent;
    t.line = line_;
    while (!done() && is_ident_char(cur())) {
      t.text.push_back(cur());
      advance();
    }
    // String-literal prefixes: R"...", u8R"...", L"...", u"...", etc.
    if (!done() && cur() == '"') {
      const std::string& p = t.text;
      const bool raw = !p.empty() && p.back() == 'R' &&
                       (p == "R" || p == "u8R" || p == "uR" || p == "UR" ||
                        p == "LR");
      const bool plain = p == "u8" || p == "u" || p == "U" || p == "L";
      if (raw) {
        raw_string(p);
        return;
      }
      if (plain) {
        string_lit(p);
        return;
      }
    }
    if (!done() && cur() == '\'' &&
        (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L")) {
      // Prefixed char literal; the prefix token is dropped into the literal.
      char_lit();
      return;
    }
    out_.tokens.push_back(std::move(t));
  }

  void punct() {
    Token t;
    t.kind = TokKind::kPunct;
    t.line = line_;
    if (cur() == ':' && peek() == ':') {
      t.text = "::";
      advance();
      advance();
    } else {
      t.text.push_back(cur());
      advance();
    }
    out_.tokens.push_back(std::move(t));
  }

  std::string_view text_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool line_blank_ = true;  ///< nothing but whitespace so far on this line
  LexedFile out_;
};

}  // namespace

LexedFile lex(std::string_view text) { return Lexer(text).run(); }

}  // namespace pardsm::lint
